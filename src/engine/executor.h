/// \file executor.h
/// \brief The data-flow query execution engine.
///
/// This is the paper's primary contribution realized on threads: every plan
/// node is an *instruction*; pages (or whole relations, or single tuples,
/// per ExecOptions::granularity) are the operands that *enable* it; a pool
/// of worker threads plays the role of the instruction-processor (IP) pool,
/// executing instruction packets as operands arrive and pipelining result
/// pages up the query tree without ever waiting for a node to finish before
/// its consumer starts (Section 2.3).
///
/// Differences between the three granularities show up exactly where the
/// paper predicts:
///   - kRelation: a node's tasks are created only after all of its inputs
///     have completed — intermediate relations fully materialize through
///     the buffer hierarchy and pipelining is lost;
///   - kPage: tasks are created per arriving page — producers and consumers
///     overlap and the working set stays in local memory;
///   - kTuple: the edge unit shrinks to one tuple — maximal scheduling
///     freedom, but per-packet overhead dominates (Section 3.3's bandwidth
///     argument, measurable here via ExecStats).

#ifndef DFDB_ENGINE_EXECUTOR_H_
#define DFDB_ENGINE_EXECUTOR_H_

#include <memory>
#include <vector>

#include "common/macros.h"
#include "engine/concurrency.h"
#include "engine/engine_stats.h"
#include "engine/exec_options.h"
#include "engine/query_result.h"
#include "ra/analyzer.h"
#include "ra/plan.h"
#include "storage/buffer_manager.h"
#include "storage/storage_engine.h"

namespace dfdb {

/// \brief Executes resolved or unresolved query trees against a
/// StorageEngine with data-flow scheduling.
///
/// An Executor owns its worker pool configuration and a BufferManager
/// modelling the IC-local-memory / disk-cache / mass-storage hierarchy.
/// Execute() and ExecuteBatch() may be called repeatedly; each call stands
/// up a private one-shot Scheduler (see scheduler.h) — workers run to
/// completion and tear down so that wall-clock measurements are
/// self-contained. Long-lived multi-user services should hold a resident
/// Scheduler instead and call Submit().
class Executor {
 public:
  Executor(StorageEngine* storage, ExecOptions options);
  ~Executor();
  DFDB_DISALLOW_COPY(Executor);

  const ExecOptions& options() const { return options_; }

  /// Runs one query. The plan is cloned and analyzed internally, so \p plan
  /// may be reused across runs and engines.
  ///
  /// Statistics ride on the result: `result.stats()` holds the per-query
  /// snapshot (and the trace when ExecOptions::enable_trace is set). When
  /// \p batch_stats is non-null it receives the whole-run aggregate,
  /// including pool-wide fault counters and buffer-hierarchy traffic.
  StatusOr<QueryResult> Execute(const PlanNode& plan,
                                ExecStats* batch_stats = nullptr);

  /// Runs a batch of queries concurrently under MC-style admission control:
  /// conflicting queries (write/write or read/write on a base relation) are
  /// serialized, everything else shares the processor pool. Results are
  /// returned in input order, each carrying its own per-query ExecStats;
  /// \p batch_stats (optional) receives the batch aggregate.
  StatusOr<std::vector<QueryResult>> ExecuteBatch(
      const std::vector<const PlanNode*>& plans,
      ExecStats* batch_stats = nullptr);

 private:
  StorageEngine* storage_;
  ExecOptions options_;
};

}  // namespace dfdb

#endif  // DFDB_ENGINE_EXECUTOR_H_

/// \file executor.h
/// \brief The data-flow query execution engine.
///
/// This is the paper's primary contribution realized on threads: every plan
/// node is an *instruction*; pages (or whole relations, or single tuples,
/// per ExecOptions::granularity) are the operands that *enable* it; a pool
/// of worker threads plays the role of the instruction-processor (IP) pool,
/// executing instruction packets as operands arrive and pipelining result
/// pages up the query tree without ever waiting for a node to finish before
/// its consumer starts (Section 2.3).
///
/// Differences between the three granularities show up exactly where the
/// paper predicts:
///   - kRelation: a node's tasks are created only after all of its inputs
///     have completed — intermediate relations fully materialize through
///     the buffer hierarchy and pipelining is lost;
///   - kPage: tasks are created per arriving page — producers and consumers
///     overlap and the working set stays in local memory;
///   - kTuple: the edge unit shrinks to one tuple — maximal scheduling
///     freedom, but per-packet overhead dominates (Section 3.3's bandwidth
///     argument, measurable here via ExecStats).

#ifndef DFDB_ENGINE_EXECUTOR_H_
#define DFDB_ENGINE_EXECUTOR_H_

#include <memory>
#include <vector>

#include "common/macros.h"
#include "engine/concurrency.h"
#include "engine/engine_stats.h"
#include "engine/exec_options.h"
#include "engine/query_result.h"
#include "ra/analyzer.h"
#include "ra/plan.h"
#include "storage/buffer_manager.h"
#include "storage/storage_engine.h"

namespace dfdb {

/// \brief Deprecated compatibility facade over RunQuery/RunBatch (run.h).
///
/// An Executor carries nothing but a storage pointer and an ExecOptions
/// value; each Execute/ExecuteBatch call stands up a private one-shot
/// Scheduler (see scheduler.h). New code should call RunQuery/RunBatch
/// directly, or hold a resident Scheduler and Submit() for multi-user work.
class Executor {
 public:
  Executor(StorageEngine* storage, ExecOptions options);
  ~Executor();
  DFDB_DISALLOW_COPY(Executor);

  const ExecOptions& options() const { return options_; }

  /// \deprecated Use RunQuery (run.h) or Scheduler::Submit.
  [[deprecated("use RunQuery (run.h) or Scheduler::Submit")]]
  StatusOr<QueryResult> Execute(const PlanNode& plan,
                                ExecStats* batch_stats = nullptr);

  /// \deprecated Use RunBatch (run.h) or Scheduler::Submit.
  [[deprecated("use RunBatch (run.h) or Scheduler::Submit")]]
  StatusOr<std::vector<QueryResult>> ExecuteBatch(
      const std::vector<const PlanNode*>& plans,
      ExecStats* batch_stats = nullptr);

 private:
  StorageEngine* storage_;
  ExecOptions options_;
};

}  // namespace dfdb

#endif  // DFDB_ENGINE_EXECUTOR_H_

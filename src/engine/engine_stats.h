/// \file engine_stats.h
/// \brief Execution statistics gathered by the dataflow engine.

#ifndef DFDB_ENGINE_ENGINE_STATS_H_
#define DFDB_ENGINE_ENGINE_STATS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "index/index_stats.h"
#include "obs/run_report.h"
#include "operators/kernels.h"
#include "storage/buffer_manager.h"
#include "storage/pushdown.h"

namespace dfdb {

/// \brief Thread-safe counters updated by worker threads.
///
/// The byte counters correspond to the paper's network-bandwidth analysis:
/// every instruction packet's operand bytes pass the "arbitration" path to a
/// processor; every result page passes the "distribution" path back.
struct EngineCounters {
  std::atomic<uint64_t> tasks_executed{0};
  /// Instruction packets dispatched (a join outer-page task counts once per
  /// inner page it consumes, since each consumption is one broadcast
  /// delivery).
  std::atomic<uint64_t> packets{0};
  /// Operand payload bytes moved memory -> processor.
  std::atomic<uint64_t> arbitration_bytes{0};
  /// Result payload bytes moved processor -> memory.
  std::atomic<uint64_t> distribution_bytes{0};
  /// Packet-overhead bytes (packets * overhead).
  std::atomic<uint64_t> overhead_bytes{0};
  std::atomic<uint64_t> pages_produced{0};
  std::atomic<uint64_t> tuples_produced{0};
  // Fault injection (EngineFaultPlan).
  std::atomic<uint64_t> faults_injected{0};
  std::atomic<uint64_t> workers_abandoned{0};
  /// Tasks pushed back to the queue by an abandoning worker and later
  /// completed by a survivor.
  std::atomic<uint64_t> redispatched_tasks{0};
  /// Poisoned packets detected and dropped by workers.
  std::atomic<uint64_t> poison_dropped{0};
  // Pipeline-fusion outcomes (engine.pipeline.*). Edges are counted once
  // per query at task-build time; pages as the fused chains run.
  std::atomic<uint64_t> pipeline_fused_edges{0};
  std::atomic<uint64_t> pipeline_materialized_edges{0};
  /// Intermediate pages that were never built because the edge was fused.
  std::atomic<uint64_t> pipeline_pages_elided{0};
  /// Input pages run through a FusedPipeline program.
  std::atomic<uint64_t> pipeline_fused_pages{0};
  /// Edges the plan marked fused but the engine had to materialize (safety
  /// re-check failed at build time).
  std::atomic<uint64_t> pipeline_runtime_fallbacks{0};
  /// Compiled-vs-interpreted kernel split (engine.kernel.*).
  KernelStats kernel;
  /// Access-path pruning outcomes (engine.index.*).
  IndexPruneStats index;
  /// Near-data pushdown outcomes (engine.pushdown.*).
  PushdownStats pushdown;
};

/// \brief Immutable snapshot of one query (or batch) execution.
///
/// Per-query snapshots ride on QueryResult::stats(); the batch aggregate is
/// returned through the `batch_stats` out-parameter of
/// Executor::Execute/ExecuteBatch. Fault counters and buffer traffic are
/// pool-wide, so they appear only in the batch aggregate (zero in per-query
/// snapshots).
struct ExecStats {
  double wall_seconds = 0;
  uint64_t tasks_executed = 0;
  uint64_t packets = 0;
  uint64_t arbitration_bytes = 0;
  uint64_t distribution_bytes = 0;
  uint64_t overhead_bytes = 0;
  uint64_t pages_produced = 0;
  uint64_t tuples_produced = 0;
  uint64_t faults_injected = 0;
  uint64_t workers_abandoned = 0;
  uint64_t redispatched_tasks = 0;
  uint64_t poison_dropped = 0;
  /// Pipeline-fusion outcomes (engine.pipeline.*).
  uint64_t pipeline_fused_edges = 0;
  uint64_t pipeline_materialized_edges = 0;
  uint64_t pipeline_pages_elided = 0;
  uint64_t pipeline_fused_pages = 0;
  uint64_t pipeline_runtime_fallbacks = 0;
  // MC scheduler admission outcomes (engine.sched.*). Per-query snapshots
  // carry this query's own values (admitted/queued are then 0-or-1); batch
  // and scheduler aggregates carry totals. queue_wait_ns is exactly 0 for
  // queries admitted without waiting, so seeded conflict-free runs stay
  // deterministic.
  uint64_t sched_admitted = 0;      ///< Queries admitted immediately.
  uint64_t sched_queued = 0;        ///< Queries that waited in the MC queue.
  uint64_t sched_requeues = 0;      ///< Failed re-admission probes.
  uint64_t sched_queue_wait_ns = 0; ///< Time spent waiting for admission.
  uint64_t sched_skips = 0;         ///< Conflicting bypasses while waiting.
  // MVCC snapshot-read outcomes (engine.mvcc.*). Per-query snapshots carry
  // the storage-wide counter values observed at completion; scheduler
  // aggregates carry the live storage-wide values.
  uint64_t mvcc_snapshots_open = 0;     ///< Live snapshots right now.
  uint64_t mvcc_snapshots_captured = 0; ///< Snapshots ever captured.
  uint64_t mvcc_versions_live = 0;      ///< Version records across files.
  uint64_t mvcc_pages_copied = 0;       ///< Pages rewritten copy-on-write.
  uint64_t mvcc_gc_reclaimed = 0;       ///< Retired pages freed by GC.
  uint64_t mvcc_commits = 0;            ///< Versions installed (commits).
  /// Kernel-compilation outcomes (engine.kernel.*): how many pages ran the
  /// compiled program vs the interpreted Expr tree, how often compilation
  /// was refused, and which join path page pairs took.
  KernelStatsSnapshot kernel;
  /// Access-path pruning outcomes (engine.index.*): pages skipped via zone
  /// maps / grid-file probes on marked scans.
  IndexPruneCounters index;
  /// Near-data pushdown outcomes (engine.pushdown.*): restricts executed
  /// inside the buffer hierarchy on marked scans.
  PushdownCounters pushdown;
  BufferStats buffer;
  /// Event trace of the run this snapshot belongs to, when
  /// ExecOptions::enable_trace was set (shared across the batch; events
  /// carry their query index). Null otherwise.
  std::shared_ptr<const obs::Trace> trace;

  uint64_t network_bytes() const {
    return arbitration_bytes + distribution_bytes + overhead_bytes;
  }

  /// Average offered network load over the run, bits per second.
  double network_bps() const {
    return wall_seconds > 0
               ? static_cast<double>(network_bytes()) * 8.0 / wall_seconds
               : 0.0;
  }

  /// Backend-agnostic view (counters under `engine.*` / `storage.*`).
  obs::RunReport ToReport() const;

  std::string ToString() const;
};

/// Registers every ExecStats counter into \p registry under the
/// observability naming scheme (`engine.tasks_executed`,
/// `engine.arbitration_bytes`, `engine.faults.injected`, `storage.*`, ...).
void RegisterMetrics(const ExecStats& stats, obs::MetricsRegistry* registry);

}  // namespace dfdb

#endif  // DFDB_ENGINE_ENGINE_STATS_H_

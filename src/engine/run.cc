#include "engine/run.h"

#include <chrono>
#include <memory>
#include <utility>

#include "common/macros.h"
#include "engine/scheduler.h"

namespace dfdb {

StatusOr<QueryResult> RunQuery(StorageEngine* storage, const PlanNode& plan,
                               const ExecOptions& options,
                               ExecStats* batch_stats) {
  std::vector<const PlanNode*> plans{&plan};
  DFDB_ASSIGN_OR_RETURN(std::vector<QueryResult> results,
                        RunBatch(storage, plans, options, batch_stats));
  return std::move(results[0]);
}

StatusOr<std::vector<QueryResult>> RunBatch(
    StorageEngine* storage, const std::vector<const PlanNode*>& plans,
    const ExecOptions& options, ExecStats* batch_stats) {
  std::vector<QueryResult> results;
  if (plans.empty()) {
    if (batch_stats != nullptr) *batch_stats = ExecStats{};
    return results;
  }

  // Deferred start keeps the batch deterministic: every query's initial
  // tasks are enqueued (and its snapshot stamped, in submission order)
  // before any worker runs, exactly like the historical one-pool-per-batch
  // executor.
  SchedulerOptions sched_options;
  sched_options.exec = options;
  sched_options.defer_worker_start = true;
  Scheduler scheduler(storage, std::move(sched_options));

  std::vector<QueryHandle> handles;
  handles.reserve(plans.size());
  for (const PlanNode* plan : plans) {
    if (plan == nullptr) {
      if (batch_stats != nullptr) *batch_stats = ExecStats{};
      return Status::InvalidArgument("null plan");
    }
    auto handle = scheduler.Submit(*plan);
    if (!handle.ok()) {
      // Analysis failed before anything executed; the never-started
      // scheduler cancels the earlier submissions without side effects.
      if (batch_stats != nullptr) *batch_stats = ExecStats{};
      return handle.status();
    }
    handles.push_back(*std::move(handle));
  }

  const auto start = std::chrono::steady_clock::now();
  scheduler.Start();

  Status first_error = Status::OK();
  results.resize(handles.size());
  for (size_t i = 0; i < handles.size(); ++i) {
    auto result = handles[i].Wait();
    if (!result.ok()) {
      if (first_error.ok()) first_error = result.status();
      continue;
    }
    results[i] = *std::move(result);
  }
  scheduler.Shutdown();
  const auto end = std::chrono::steady_clock::now();

  // Workers have quiesced: merge the trace once and share it across the
  // batch aggregate and every per-query snapshot.
  std::shared_ptr<const obs::Trace> trace = scheduler.FinishTrace();
  if (trace != nullptr) {
    for (QueryResult& result : results) {
      ExecStats qs = result.stats();
      qs.trace = trace;
      result.set_stats(std::move(qs));
    }
  }

  if (batch_stats != nullptr) {
    *batch_stats = scheduler.AggregateStats();
    // The batch wall clock is this call's own span, not the scheduler's
    // lifetime (construction and preparation are excluded, as before).
    batch_stats->wall_seconds =
        std::chrono::duration<double>(end - start).count();
  }
  if (!first_error.ok()) return first_error;
  return results;
}

}  // namespace dfdb

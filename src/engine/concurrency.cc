#include "engine/concurrency.h"

namespace dfdb {

bool ConflictManager::TryAdmit(uint64_t query_id,
                               const std::set<std::string>& read_set,
                               const std::set<std::string>& write_set) {
  std::lock_guard<std::mutex> lock(mu_);
  if (held_.count(query_id) > 0) return false;  // Already admitted.
  // Check phase: a write conflicts with any holder; a read conflicts with a
  // writer. Reads of relations also being written by this same query are
  // subsumed by the exclusive lock.
  for (const std::string& r : write_set) {
    auto it = locks_.find(r);
    if (it != locks_.end() &&
        (!it->second.readers.empty() || it->second.writer != 0)) {
      return false;
    }
  }
  for (const std::string& r : read_set) {
    if (write_set.count(r) > 0) continue;
    auto it = locks_.find(r);
    if (it != locks_.end() && it->second.writer != 0) return false;
  }
  // Acquire phase.
  for (const std::string& r : write_set) {
    locks_[r].writer = query_id;
  }
  for (const std::string& r : read_set) {
    if (write_set.count(r) > 0) continue;
    locks_[r].readers.insert(query_id);
  }
  held_[query_id] = {read_set, write_set};
  return true;
}

void ConflictManager::Release(uint64_t query_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = held_.find(query_id);
  if (it == held_.end()) return;
  for (const std::string& r : it->second.second) {
    auto lk = locks_.find(r);
    if (lk != locks_.end() && lk->second.writer == query_id) {
      lk->second.writer = 0;
      if (lk->second.readers.empty()) locks_.erase(lk);
    }
  }
  for (const std::string& r : it->second.first) {
    auto lk = locks_.find(r);
    if (lk != locks_.end()) {
      lk->second.readers.erase(query_id);
      if (lk->second.readers.empty() && lk->second.writer == 0) {
        locks_.erase(lk);
      }
    }
  }
  held_.erase(it);
}

int ConflictManager::admitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(held_.size());
}

// ---------------------------------------------------------------------------
// AdmissionQueue
// ---------------------------------------------------------------------------

AdmissionQueue::AdmissionQueue(int max_admission_skips)
    : max_skips_(max_admission_skips < 1 ? 1 : max_admission_skips) {}

bool AdmissionQueue::Conflicts(const Waiting& w,
                               const std::set<std::string>& reads,
                               const std::set<std::string>& writes) {
  for (const std::string& r : w.writes) {
    if (reads.count(r) > 0 || writes.count(r) > 0) return true;
  }
  for (const std::string& r : writes) {
    if (w.reads.count(r) > 0) return true;
  }
  return false;
}

bool AdmissionQueue::Submit(uint64_t query_id,
                            const std::set<std::string>& read_set,
                            const std::set<std::string>& write_set) {
  // A starved waiting query is a barrier: conflicting newcomers queue
  // behind it even if the lock table would admit them right now.
  bool barred = false;
  for (const Waiting& w : waiting_) {
    if (w.skips >= static_cast<uint64_t>(max_skips_) &&
        Conflicts(w, read_set, write_set)) {
      barred = true;
      break;
    }
  }
  if (!barred && conflicts_.TryAdmit(query_id, read_set, write_set)) {
    // Everything already waiting that conflicts with this admission was
    // just bypassed.
    for (Waiting& w : waiting_) {
      if (Conflicts(w, read_set, write_set)) ++w.skips;
    }
    return true;
  }
  waiting_.push_back(Waiting{query_id, read_set, write_set, 0, 0});
  return false;
}

std::vector<AdmissionQueue::ReAdmitted> AdmissionQueue::Release(
    uint64_t query_id) {
  conflicts_.Release(query_id);
  std::vector<ReAdmitted> admitted;
  for (auto it = waiting_.begin(); it != waiting_.end();) {
    if (conflicts_.TryAdmit(it->qid, it->reads, it->writes)) {
      // Entries queued earlier that stay behind were bypassed by this
      // admission if they conflict with it.
      for (auto jt = waiting_.begin(); jt != it; ++jt) {
        if (Conflicts(*jt, it->reads, it->writes)) ++jt->skips;
      }
      admitted.push_back(ReAdmitted{it->qid, it->failed_probes, it->skips});
      total_skips_ += it->skips;
      it = waiting_.erase(it);
    } else {
      ++requeue_failures_;
      ++it->failed_probes;
      // Starved and still blocked: nothing behind may jump it.
      if (it->skips >= static_cast<uint64_t>(max_skips_)) break;
      ++it;
    }
  }
  return admitted;
}

bool AdmissionQueue::Cancel(uint64_t query_id) {
  for (auto it = waiting_.begin(); it != waiting_.end(); ++it) {
    if (it->qid == query_id) {
      total_skips_ += it->skips;
      waiting_.erase(it);
      return true;
    }
  }
  return false;
}

std::vector<uint64_t> AdmissionQueue::CancelAll() {
  std::vector<uint64_t> out;
  out.reserve(waiting_.size());
  for (const Waiting& w : waiting_) {
    total_skips_ += w.skips;
    out.push_back(w.qid);
  }
  waiting_.clear();
  return out;
}

uint64_t AdmissionQueue::skips(uint64_t query_id) const {
  for (const Waiting& w : waiting_) {
    if (w.qid == query_id) return w.skips;
  }
  return 0;
}

}  // namespace dfdb

#include "engine/concurrency.h"

namespace dfdb {

bool ConflictManager::TryAdmit(uint64_t query_id,
                               const std::set<std::string>& read_set,
                               const std::set<std::string>& write_set) {
  std::lock_guard<std::mutex> lock(mu_);
  if (held_.count(query_id) > 0) return false;  // Already admitted.
  // Check phase: a write conflicts with any holder; a read conflicts with a
  // writer. Reads of relations also being written by this same query are
  // subsumed by the exclusive lock.
  for (const std::string& r : write_set) {
    auto it = locks_.find(r);
    if (it != locks_.end() &&
        (!it->second.readers.empty() || it->second.writer != 0)) {
      return false;
    }
  }
  for (const std::string& r : read_set) {
    if (write_set.count(r) > 0) continue;
    auto it = locks_.find(r);
    if (it != locks_.end() && it->second.writer != 0) return false;
  }
  // Acquire phase.
  for (const std::string& r : write_set) {
    locks_[r].writer = query_id;
  }
  for (const std::string& r : read_set) {
    if (write_set.count(r) > 0) continue;
    locks_[r].readers.insert(query_id);
  }
  held_[query_id] = {read_set, write_set};
  return true;
}

void ConflictManager::Release(uint64_t query_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = held_.find(query_id);
  if (it == held_.end()) return;
  for (const std::string& r : it->second.second) {
    auto lk = locks_.find(r);
    if (lk != locks_.end() && lk->second.writer == query_id) {
      lk->second.writer = 0;
      if (lk->second.readers.empty()) locks_.erase(lk);
    }
  }
  for (const std::string& r : it->second.first) {
    auto lk = locks_.find(r);
    if (lk != locks_.end()) {
      lk->second.readers.erase(query_id);
      if (lk->second.readers.empty() && lk->second.writer == 0) {
        locks_.erase(lk);
      }
    }
  }
  held_.erase(it);
}

int ConflictManager::admitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(held_.size());
}

}  // namespace dfdb

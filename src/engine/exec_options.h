/// \file exec_options.h
/// \brief Execution configuration: granularity, processors, memory cells.

#ifndef DFDB_ENGINE_EXEC_OPTIONS_H_
#define DFDB_ENGINE_EXEC_OPTIONS_H_

#include <string>
#include <string_view>

namespace dfdb {

/// \brief The paper's three operand granularities (Section 3.0).
enum class Granularity {
  /// "A node ... is enabled for execution only when its source operand(s)
  /// has (have) been completely computed." (Section 3.1)
  kRelation,
  /// "An operator can be initiated as soon as at least one page of each
  /// participating relation(s) exists." (Section 3.2)
  kPage,
  /// "A tuple of a relation is the basic unit which is used for scheduling
  /// decisions." (Section 3.3)
  kTuple,
};

std::string_view GranularityToString(Granularity g);

/// \brief How an engine treats the optimizer's per-edge pipeline marks
/// (PlanNode::pipeline_fused; see DESIGN.md "Pipeline fusion").
enum class PipelinePolicy {
  /// Fuse exactly the edges the optimizer marked (default).
  kHonorPlan,
  /// Materialize every edge regardless of marks — the pre-fusion
  /// behaviour, and the differential-testing baseline.
  kForceMaterialize,
  /// Fuse every edge that passes the safety conditions (PipelineEdgeSafe),
  /// marked or not. Stats vetoes are ignored; safety is still enforced.
  kForceFuse,
};

std::string_view PipelinePolicyToString(PipelinePolicy p);

/// \brief How an engine treats the optimizer's per-scan access-path marks
/// (PlanNode::access_path; see DESIGN.md "Indexing & page pruning").
enum class IndexPolicy {
  /// Prune marked scans through zone maps / grid files (default).
  kHonorPlan,
  /// Read every page regardless of marks — the pre-index behaviour, and
  /// the differential-testing baseline.
  kForceFullScan,
};

std::string_view IndexPolicyToString(IndexPolicy p);

/// \brief How an engine treats the optimizer's per-scan pushdown marks
/// (PlanNode::pushdown; see DESIGN.md "Near-data pushdown").
enum class PushdownPolicy {
  /// Execute marked restricts inside the storage hierarchy (default).
  kHonorPlan,
  /// Ship raw pages and filter at the processors regardless of marks —
  /// the pre-pushdown behaviour, and the differential-testing baseline.
  kForceOff,
};

std::string_view PushdownPolicyToString(PushdownPolicy p);

/// \brief Deterministic fault schedule for the threaded engine — the
/// analogue of the machine simulator's FaultPlan. Workers abandon work at
/// operator-packet boundaries, so a restarted task re-runs from scratch and
/// results are unchanged; poisoned packets model corrupted instruction
/// packets that the dispatcher detects (checksum) and drops.
struct EngineFaultPlan {
  /// Workers that abandon mid-query and exit (clamped so at least one
  /// worker survives).
  int abandon_workers = 0;
  /// A doomed worker abandons after claiming this many tasks.
  uint64_t abandon_after_tasks = 4;
  /// Corrupted no-op packets injected into the task queue.
  int poison_packets = 0;

  bool active() const { return abandon_workers > 0 || poison_packets > 0; }
};

/// \brief Knobs of one engine instantiation.
struct ExecOptions {
  Granularity granularity = Granularity::kPage;

  /// Number of worker threads = instruction processors.
  int num_processors = 4;

  /// Memory cells per processor (the paper's benchmark fixes 2): bounds how
  /// many enabled-but-unexecuted instruction packets may be outstanding,
  /// throttling the scan sources.
  int memory_cells_per_processor = 2;

  /// Page size (payload bytes) for intermediate relations. With kTuple
  /// granularity edges carry single-tuple pages regardless of this value.
  int page_bytes = 16384;

  /// Capacity of the local-memory level of the buffer hierarchy, in pages.
  int local_memory_pages = 64;

  /// Capacity of the disk-cache level, in pages.
  int disk_cache_pages = 512;

  /// Per-packet overhead bytes ("c" in the Section 3.3 analysis) counted in
  /// the network-traffic statistics.
  int packet_overhead_bytes = 64;

  /// Partition count for the parallel duplicate-elimination project.
  int dedup_partitions = 16;

  /// Per-edge pipeline-vs-materialize execution policy.
  PipelinePolicy pipeline = PipelinePolicy::kHonorPlan;

  /// Per-scan access-path execution policy (honor index marks vs force
  /// full scans).
  IndexPolicy index = IndexPolicy::kHonorPlan;

  /// Per-scan near-data pushdown policy (filter marked scans inside the
  /// storage hierarchy vs ship raw pages).
  PushdownPolicy pushdown = PushdownPolicy::kHonorPlan;

  /// Deterministic fault schedule (empty = healthy workers).
  EngineFaultPlan fault_plan;

  /// Record a per-run obs::Trace of task/packet/page/fault events. Off by
  /// default: with tracing disabled the engine only keeps its counters and
  /// the observability layer costs one branch per event site.
  bool enable_trace = false;

  std::string ToString() const;
};

}  // namespace dfdb

#endif  // DFDB_ENGINE_EXEC_OPTIONS_H_

/// \file scheduler.h
/// \brief The resident multi-query scheduler (the paper's master controller).
///
/// Section 4.0, requirement 1: "a database machine ... must be able to
/// support the simultaneous execution of multiple queries from several
/// users". The Scheduler realizes the MC role for the threads engine as a
/// long-lived object: one persistent pool of worker threads (the IP pool),
/// an admission queue in front of the ConflictManager's relation-level lock
/// table, and Submit() callable from any thread. Queries whose read/write
/// sets conflict with a running query wait in an MC queue and are
/// re-admitted when a conflicting query completes — FIFO, with an
/// anti-starvation rule so a stream of readers cannot park a writer forever
/// (see AdmissionQueue in concurrency.h).
///
/// Unlike Executor::Execute(), which historically built and tore down a
/// whole worker pool per call, a Scheduler keeps its workers resident:
/// concurrent users genuinely share the IP pool, and worker threads
/// multiplex task queues across every admitted query. Executor::Execute and
/// Executor::ExecuteBatch are now thin compatibility wrappers over a
/// private, per-call Scheduler.

#ifndef DFDB_ENGINE_SCHEDULER_H_
#define DFDB_ENGINE_SCHEDULER_H_

#include <memory>

#include "common/macros.h"
#include "common/statusor.h"
#include "engine/engine_stats.h"
#include "engine/exec_options.h"
#include "engine/query_result.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "ra/plan.h"
#include "storage/storage_engine.h"

namespace dfdb {

namespace internal {
class SchedulerImpl;
struct QueryState;
}  // namespace internal

/// \brief Concurrency-control regime of one scheduler.
enum class ConcurrencyMode {
  /// MVCC snapshot reads (the default): every query executes against an
  /// immutable Snapshot stamped at admission, read-only queries are
  /// admitted immediately (they never queue and never skip), and the
  /// admission queue arbitrates writer–writer conflicts only. Snapshot
  /// timestamps derive from admission order, not wall clock, so deferred
  /// single-worker replay stays deterministic.
  kSnapshot,
  /// Legacy barrier mode: relation-granularity S/X admission — every
  /// reader queues behind every writer of a shared relation. Kept for the
  /// reader/writer bench comparison and as a semantics reference.
  kBarrier,
};

/// \brief Configuration of one resident scheduler.
struct SchedulerOptions {
  /// Engine knobs: pool size, granularity, buffer hierarchy, fault plan,
  /// tracing. The pool is created once and shared by every submitted query.
  ExecOptions exec;

  /// Anti-starvation bound for the MC admission queue: once a waiting query
  /// has been bypassed by this many conflicting later admissions, no later
  /// query that conflicts with it may be admitted ahead of it (see
  /// AdmissionQueue).
  int max_admission_skips = 8;

  /// When set, worker threads are not started until Start() is called.
  /// Every Submit() before Start() only enqueues work, so a single-worker
  /// scheduler replays a batch with a deterministic schedule — the property
  /// the byte-identical trace-export tests (and the Executor compatibility
  /// wrappers) rely on.
  bool defer_worker_start = false;

  /// Snapshot reads vs legacy barrier admission (see ConcurrencyMode).
  ConcurrencyMode concurrency = ConcurrencyMode::kSnapshot;
};

/// \brief Future-like handle to one submitted query.
///
/// Cheap to copy (shared state). Wait() blocks until the query completes
/// and moves the QueryResult — carrying its per-query ExecStats and trace —
/// out; a second Wait() returns FailedPrecondition. Queries cancelled by
/// Shutdown() yield Status::Cancelled.
class QueryHandle {
 public:
  QueryHandle() = default;

  bool valid() const { return state_ != nullptr; }

  /// Scheduler-assigned query id (also used in error contexts).
  uint64_t qid() const;

  /// True once the query completed, failed, or was cancelled.
  bool Done() const;

  /// Blocks until completion and moves the result out.
  StatusOr<QueryResult> Wait();

  /// Nanoseconds this query spent in the MC admission queue (0 when it was
  /// admitted immediately; also readable from stats().sched_queue_wait_ns).
  uint64_t queue_wait_ns() const;

 private:
  friend class internal::SchedulerImpl;
  explicit QueryHandle(std::shared_ptr<internal::QueryState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<internal::QueryState> state_;
};

/// \brief Long-lived master controller: persistent worker pool + admission
/// queue. Thread-safe: Submit() may be called concurrently from any thread.
class Scheduler {
 public:
  Scheduler(StorageEngine* storage, SchedulerOptions options);
  /// Convenience: default scheduling knobs, workers started immediately.
  Scheduler(StorageEngine* storage, ExecOptions exec_options);
  ~Scheduler();
  DFDB_DISALLOW_COPY(Scheduler);

  const SchedulerOptions& options() const;

  /// Clones, analyzes, and admits (or queues) one query. Returns an error
  /// only for plans that fail analysis or after Shutdown(); execution
  /// errors are reported through QueryHandle::Wait().
  StatusOr<QueryHandle> Submit(const PlanNode& plan);

  /// Starts the worker pool. Idempotent; only meaningful with
  /// SchedulerOptions::defer_worker_start.
  void Start();

  /// Stops accepting queries, fails every still-queued query with
  /// Status::Cancelled, waits for running queries to drain, and joins the
  /// worker pool. If the pool was never started, admitted-but-unexecuted
  /// queries are cancelled as well (nothing ran, so nothing was mutated).
  /// Idempotent; also called by the destructor.
  void Shutdown();

  /// Lifetime aggregate across completed queries plus pool-wide counters
  /// (faults, buffer-hierarchy traffic) and the engine.sched.* totals.
  /// wall_seconds is the scheduler's lifetime so far.
  ExecStats AggregateStats() const;

  /// Registers the live engine.sched.* counters and gauges (admitted,
  /// queued, queue-wait, requeues, pool occupancy) into \p registry.
  void SnapshotMetrics(obs::MetricsRegistry* registry) const;

  /// Merges and returns the run trace. Call only after Shutdown() (workers
  /// must have quiesced); nullptr when ExecOptions::enable_trace was unset.
  std::shared_ptr<const obs::Trace> FinishTrace();

 private:
  std::unique_ptr<internal::SchedulerImpl> impl_;
};

}  // namespace dfdb

#endif  // DFDB_ENGINE_SCHEDULER_H_

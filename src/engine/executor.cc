/// \file executor.cc
/// \brief Compatibility wrappers over the resident Scheduler.
///
/// The dataflow execution core (node graphs, worker pool, drivers) lives in
/// scheduler.cc; Execute/ExecuteBatch stand up a private one-shot Scheduler
/// per call so existing callers keep their self-contained wall-clock
/// semantics while multi-user callers migrate to Scheduler::Submit.

#include "engine/executor.h"

#include <chrono>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"
#include "engine/scheduler.h"

namespace dfdb {

std::string_view GranularityToString(Granularity g) {
  switch (g) {
    case Granularity::kRelation:
      return "relation";
    case Granularity::kPage:
      return "page";
    case Granularity::kTuple:
      return "tuple";
  }
  return "?";
}

std::string_view PipelinePolicyToString(PipelinePolicy p) {
  switch (p) {
    case PipelinePolicy::kHonorPlan:
      return "plan";
    case PipelinePolicy::kForceMaterialize:
      return "materialize";
    case PipelinePolicy::kForceFuse:
      return "fuse";
  }
  return "?";
}

std::string ExecOptions::ToString() const {
  return StrFormat(
      "granularity=%s procs=%d cells=%d page=%dB local=%dp cache=%dp "
      "pipeline=%s",
      std::string(GranularityToString(granularity)).c_str(), num_processors,
      memory_cells_per_processor, page_bytes, local_memory_pages,
      disk_cache_pages,
      std::string(PipelinePolicyToString(pipeline)).c_str());
}

Executor::Executor(StorageEngine* storage, ExecOptions options)
    : storage_(storage), options_(options) {
  DFDB_CHECK(storage != nullptr);
  DFDB_CHECK(options_.num_processors >= 1);
  DFDB_CHECK(options_.memory_cells_per_processor >= 1);
}

Executor::~Executor() = default;

StatusOr<QueryResult> Executor::Execute(const PlanNode& plan,
                                        ExecStats* batch_stats) {
  std::vector<const PlanNode*> plans{&plan};
  DFDB_ASSIGN_OR_RETURN(std::vector<QueryResult> results,
                        ExecuteBatch(plans, batch_stats));
  return std::move(results[0]);
}

StatusOr<std::vector<QueryResult>> Executor::ExecuteBatch(
    const std::vector<const PlanNode*>& plans, ExecStats* batch_stats) {
  std::vector<QueryResult> results;
  if (plans.empty()) {
    if (batch_stats != nullptr) *batch_stats = ExecStats{};
    return results;
  }

  // Deferred start keeps the batch deterministic: every query's initial
  // tasks are enqueued before any worker runs, exactly like the historical
  // one-pool-per-batch executor.
  SchedulerOptions sched_options;
  sched_options.exec = options_;
  sched_options.defer_worker_start = true;
  Scheduler scheduler(storage_, std::move(sched_options));

  std::vector<QueryHandle> handles;
  handles.reserve(plans.size());
  for (const PlanNode* plan : plans) {
    if (plan == nullptr) {
      if (batch_stats != nullptr) *batch_stats = ExecStats{};
      return Status::InvalidArgument("null plan");
    }
    auto handle = scheduler.Submit(*plan);
    if (!handle.ok()) {
      // Analysis failed before anything executed; the never-started
      // scheduler cancels the earlier submissions without side effects.
      if (batch_stats != nullptr) *batch_stats = ExecStats{};
      return handle.status();
    }
    handles.push_back(*std::move(handle));
  }

  const auto start = std::chrono::steady_clock::now();
  scheduler.Start();

  Status first_error = Status::OK();
  results.resize(handles.size());
  for (size_t i = 0; i < handles.size(); ++i) {
    auto result = handles[i].Wait();
    if (!result.ok()) {
      if (first_error.ok()) first_error = result.status();
      continue;
    }
    results[i] = *std::move(result);
  }
  scheduler.Shutdown();
  const auto end = std::chrono::steady_clock::now();

  // Workers have quiesced: merge the trace once and share it across the
  // batch aggregate and every per-query snapshot.
  std::shared_ptr<const obs::Trace> trace = scheduler.FinishTrace();
  if (trace != nullptr) {
    for (QueryResult& result : results) {
      ExecStats qs = result.stats();
      qs.trace = trace;
      result.set_stats(std::move(qs));
    }
  }

  if (batch_stats != nullptr) {
    *batch_stats = scheduler.AggregateStats();
    // The batch wall clock is this call's own span, not the scheduler's
    // lifetime (construction and preparation are excluded, as before).
    batch_stats->wall_seconds =
        std::chrono::duration<double>(end - start).count();
  }
  if (!first_error.ok()) return first_error;
  return results;
}

}  // namespace dfdb

/// \file executor.cc
/// \brief Deprecated compatibility wrappers over RunQuery/RunBatch.
///
/// The dataflow execution core (node graphs, worker pool, drivers) lives in
/// scheduler.cc and the one-shot entry points in run.cc; Execute and
/// ExecuteBatch forward there so legacy callers keep working while they
/// migrate.

#include "engine/executor.h"

#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"
#include "engine/run.h"

namespace dfdb {

std::string_view GranularityToString(Granularity g) {
  switch (g) {
    case Granularity::kRelation:
      return "relation";
    case Granularity::kPage:
      return "page";
    case Granularity::kTuple:
      return "tuple";
  }
  return "?";
}

std::string_view PipelinePolicyToString(PipelinePolicy p) {
  switch (p) {
    case PipelinePolicy::kHonorPlan:
      return "plan";
    case PipelinePolicy::kForceMaterialize:
      return "materialize";
    case PipelinePolicy::kForceFuse:
      return "fuse";
  }
  return "?";
}

std::string ExecOptions::ToString() const {
  return StrFormat(
      "granularity=%s procs=%d cells=%d page=%dB local=%dp cache=%dp "
      "pipeline=%s",
      std::string(GranularityToString(granularity)).c_str(), num_processors,
      memory_cells_per_processor, page_bytes, local_memory_pages,
      disk_cache_pages,
      std::string(PipelinePolicyToString(pipeline)).c_str());
}

Executor::Executor(StorageEngine* storage, ExecOptions options)
    : storage_(storage), options_(options) {
  DFDB_CHECK(storage != nullptr);
  DFDB_CHECK(options_.num_processors >= 1);
  DFDB_CHECK(options_.memory_cells_per_processor >= 1);
}

Executor::~Executor() = default;

StatusOr<QueryResult> Executor::Execute(const PlanNode& plan,
                                        ExecStats* batch_stats) {
  return RunQuery(storage_, plan, options_, batch_stats);
}

StatusOr<std::vector<QueryResult>> Executor::ExecuteBatch(
    const std::vector<const PlanNode*>& plans, ExecStats* batch_stats) {
  return RunBatch(storage_, plans, options_, batch_stats);
}

}  // namespace dfdb

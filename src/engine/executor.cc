#include "engine/executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <optional>
#include <thread>

#include "common/blocking_queue.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "engine/edge.h"
#include "obs/trace.h"
#include "operators/aggregator.h"
#include "operators/dedup.h"
#include "operators/kernels.h"
#include "operators/set_ops.h"

namespace dfdb {

std::string_view GranularityToString(Granularity g) {
  switch (g) {
    case Granularity::kRelation:
      return "relation";
    case Granularity::kPage:
      return "page";
    case Granularity::kTuple:
      return "tuple";
  }
  return "?";
}

std::string ExecOptions::ToString() const {
  return StrFormat(
      "granularity=%s procs=%d cells=%d page=%dB local=%dp cache=%dp",
      std::string(GranularityToString(granularity)).c_str(), num_processors,
      memory_cells_per_processor, page_bytes, local_memory_pages,
      disk_cache_pages);
}

namespace internal {

class ExecutorImpl;

/// A page travelling between nodes: the live pointer plus its id in the
/// buffer hierarchy (fetching by id is what generates storage traffic).
struct PendingPage {
  PagePtr page;
  PageId id;
};

/// One outer page's join progress: the paper's IRC vector collapses to a
/// cursor because inner pages accumulate in arrival order.
struct OuterWork {
  PendingPage outer;
  size_t cursor = 0;
  bool first = true;
};

struct QueryRuntime;

/// \brief Runtime state of one plan node (one "instruction").
struct NodeState {
  ExecutorImpl* impl = nullptr;
  QueryRuntime* query = nullptr;
  const PlanNode* node = nullptr;
  NodeState* parent = nullptr;  // Null for the root.
  int parent_slot = 0;
  std::unique_ptr<Edge> out;

  // Static (post-analysis) configuration.
  int num_inputs = 0;
  std::vector<int> project_indices;  // kProject.
  HeapFile* target_file = nullptr;   // kAppend / kDelete.

  std::mutex mu;
  std::vector<bool> input_closed;
  std::vector<uint64_t> pending_slot;
  uint64_t pending = 0;
  /// Relation-granularity operand buffers (per slot).
  std::vector<std::vector<PendingPage>> buffered;
  /// True once tasks may be generated (always true outside kRelation).
  bool launched = true;
  bool finalize_claimed = false;
  /// Leaves (scan/delete): set when the driver finished.
  bool source_done = false;

  // kJoin.
  std::vector<PendingPage> inner_pages;
  std::vector<OuterWork> parked;
  uint64_t outer_seen = 0;
  uint64_t outer_done = 0;

  // kProject with dedup: sharded eliminators for parallel dedup.
  struct DedupShard {
    std::mutex mu;
    DuplicateEliminator set;
  };
  std::vector<std::unique_ptr<DedupShard>> dedup_shards;

  // kUnion (set semantics).
  std::mutex union_mu;
  DuplicateEliminator union_seen;

  // kDifference.
  std::mutex diff_mu;
  DifferenceOp diff;
  bool left_released = false;
  std::vector<PendingPage> left_buffer;

  // kAggregate.
  std::mutex agg_mu;
  std::optional<Aggregator> aggregator;

  // --- producer-side events (called by the child's edge wiring) ---
  void OnPage(int slot, PendingPage p);
  void OnClose(int slot);

  // --- task bodies ---
  void RunUnaryTask(int slot, PendingPage p);
  void RunJoinOuter(OuterWork w);

  // --- scheduling helpers ---
  void DispatchStream(int slot, PendingPage p);
  void LaunchRelationReplayLocked(std::vector<std::function<void()>>* tasks);
  void ReleaseDifferenceLeftIfReady();
  void TryFinalize();
  void RunFinalizeAndClose();
  bool RightSideDoneLocked() const {
    return input_closed[1] && pending_slot[1] == 0 && launched;
  }
};

/// \brief Per-query execution context.
struct QueryRuntime {
  uint64_t qid = 0;
  size_t batch_index = 0;
  std::unique_ptr<PlanNode> plan;
  QueryAnalysis analysis;
  std::vector<std::unique_ptr<NodeState>> nodes;
  NodeState* root = nullptr;

  /// Per-query work counters: attributing packets/bytes to the query that
  /// caused them is what lets stats ride on the QueryResult. Pool-wide
  /// effects (faults, buffer traffic) stay on the ExecutorImpl.
  EngineCounters counters;
  /// Set by OnQueryDone; read by Run() after the workers joined.
  std::chrono::steady_clock::time_point completed_at{};
  bool completed = false;

  std::mutex result_mu;
  QueryResult result;

  std::atomic<bool> failed{false};
  std::mutex err_mu;
  Status error;

  std::mutex interm_mu;
  std::vector<PageId> intermediates;

  void Fail(const Status& status) {
    bool expected = false;
    if (failed.compare_exchange_strong(expected, true)) {
      std::lock_guard<std::mutex> lock(err_mu);
      error = status;
    }
  }

  void RecordIntermediate(PageId id) {
    std::lock_guard<std::mutex> lock(interm_mu);
    intermediates.push_back(id);
  }
};

/// \brief One batch run: worker pool, admission control, node graphs.
class ExecutorImpl {
 public:
  ExecutorImpl(StorageEngine* storage, const ExecOptions& opts)
      : storage_(storage),
        opts_(opts),
        buffer_(&storage->page_store(), opts.local_memory_pages,
                opts.disk_cache_pages),
        trace_(opts.enable_trace) {}

  Status Run(const std::vector<const PlanNode*>& plans,
             std::vector<QueryResult>* results, ExecStats* stats);

  void Dispatch(std::function<void()> fn) { queue_.Push(std::move(fn)); }

  /// Dispatches an enabled instruction packet. The packet occupies a memory
  /// cell from dispatch until a processor picks it up ("As soon as all the
  /// required data is present, the contents of the cell are sent to some
  /// processor for execution. This frees the cell", Section 2.2).
  void DispatchPacket(std::function<void()> fn) {
    enabled_packets_.fetch_add(1, std::memory_order_relaxed);
    queue_.Push([this, fn = std::move(fn)] {
      enabled_packets_.fetch_sub(1, std::memory_order_relaxed);
      fn();
    });
  }

  /// True while every memory cell is occupied by an enabled packet; scan
  /// sources yield instead of producing more operands.
  bool ThrottleExceeded() const {
    return enabled_packets_.load(std::memory_order_relaxed) >=
           static_cast<size_t>(opts_.num_processors) *
               static_cast<size_t>(opts_.memory_cells_per_processor);
  }

  BufferManager* buffer() { return &buffer_; }
  StorageEngine* storage() { return storage_; }
  const ExecOptions& opts() const { return opts_; }
  /// Pool-wide counters (fault injection outcomes). Per-query work counters
  /// live on QueryRuntime.
  EngineCounters& counters() { return counters_; }

  /// Steady-clock nanoseconds since Run() started (trace timestamps).
  int64_t NowNs() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - run_start_)
        .count();
  }

  bool trace_enabled() const { return trace_.enabled(); }

  /// Records one trace event; no-op (one branch) when tracing is off.
  /// Events are keyed by batch index, not global qid, so two
  /// identically-seeded runs produce identical traces.
  void RecordTrace(obs::TraceEventKind kind, const QueryRuntime* q, int32_t a,
                   int32_t b, uint64_t bytes, const char* detail) {
    if (!trace_.enabled()) return;
    trace_.Record(kind, q != nullptr ? q->batch_index : 0, a, b, bytes,
                  detail, NowNs());
  }

  /// Called by the root edge's close wiring.
  void OnQueryDone(QueryRuntime* q);

  /// Scan driver step; re-dispatches itself page by page.
  void ScanStep(NodeState* node, std::shared_ptr<std::vector<PageId>> ids,
                size_t idx);
  void DeleteDriver(NodeState* node);

 private:
  StatusOr<std::unique_ptr<QueryRuntime>> Prepare(const PlanNode& plan,
                                                  size_t batch_index);
  NodeState* BuildNode(const PlanNode* n, NodeState* parent, int slot,
                       QueryRuntime* q);
  void LaunchQuery(QueryRuntime* q);
  void WorkerLoop(int worker_index);

  StorageEngine* storage_;
  ExecOptions opts_;
  BufferManager buffer_;
  EngineCounters counters_;
  obs::TraceRecorder trace_;
  std::chrono::steady_clock::time_point run_start_{};
  BlockingQueue<std::function<void()>> queue_;
  std::atomic<size_t> enabled_packets_{0};

  std::mutex admit_mu_;
  std::deque<QueryRuntime*> waiting_;
  int active_queries_ = 0;
  ConflictManager conflicts_;

  static std::atomic<uint64_t> next_qid_;
};

std::atomic<uint64_t> ExecutorImpl::next_qid_{1};

namespace {

/// PageSink adapter feeding an Edge.
class EdgeSink final : public PageSink {
 public:
  explicit EdgeSink(Edge* edge) : edge_(edge) {}
  Status Emit(Slice tuple) override { return edge_->EmitTuple(tuple); }

 private:
  Edge* edge_;
};

}  // namespace

// ---------------------------------------------------------------------------
// NodeState: dataflow event handling
// ---------------------------------------------------------------------------

void NodeState::OnPage(int slot, PendingPage p) {
  std::vector<std::function<void()>> to_dispatch;
  {
    std::lock_guard<std::mutex> lock(mu);
    if (!launched) {
      // Relation granularity: the instruction is not yet enabled; operands
      // accumulate until every input relation is complete (Section 3.1).
      buffered[static_cast<size_t>(slot)].push_back(std::move(p));
      return;
    }
  }
  DispatchStream(slot, std::move(p));
}

void NodeState::DispatchStream(int slot, PendingPage p) {
  impl->RecordTrace(obs::TraceEventKind::kPacketEnqueued, query, node->id,
                    slot,
                    static_cast<uint64_t>(p.page->payload_bytes()), nullptr);
  if (node->op == PlanOp::kJoin && slot == 1) {
    // Inner page: make it visible, then wake every parked outer task.
    std::vector<OuterWork> wake;
    {
      std::lock_guard<std::mutex> lock(mu);
      inner_pages.push_back(std::move(p));
      wake.swap(parked);
      pending += wake.size();
    }
    for (auto& w : wake) {
      impl->DispatchPacket([this, w = std::move(w)]() mutable {
        RunJoinOuter(std::move(w));
      });
    }
    return;
  }
  if (node->op == PlanOp::kJoin && slot == 0) {
    OuterWork w;
    w.outer = std::move(p);
    {
      std::lock_guard<std::mutex> lock(mu);
      ++outer_seen;
      ++pending;
      ++pending_slot[0];
    }
    impl->DispatchPacket([this, w = std::move(w)]() mutable {
      RunJoinOuter(std::move(w));
    });
    return;
  }
  if (node->op == PlanOp::kDifference && slot == 0) {
    // Left pages must wait for the right side to finish (set difference is
    // a barrier on its subtrahend).
    std::lock_guard<std::mutex> lock(mu);
    if (!RightSideDoneLocked() || !left_released) {
      left_buffer.push_back(std::move(p));
      return;
    }
    ++pending;
    ++pending_slot[0];
    PendingPage moved = std::move(p);
    impl->DispatchPacket([this, moved]() mutable { RunUnaryTask(0, std::move(moved)); });
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    ++pending;
    ++pending_slot[static_cast<size_t>(slot)];
  }
  PendingPage moved = std::move(p);
  impl->DispatchPacket(
      [this, slot, moved]() mutable { RunUnaryTask(slot, std::move(moved)); });
}

void NodeState::OnClose(int slot) {
  bool replay = false;
  std::vector<std::function<void()>> replay_tasks;
  std::vector<OuterWork> wake;
  {
    std::lock_guard<std::mutex> lock(mu);
    input_closed[static_cast<size_t>(slot)] = true;
    if (!launched) {
      bool all = true;
      for (bool c : input_closed) all = all && c;
      if (all) {
        launched = true;
        replay = true;
        LaunchRelationReplayLocked(&replay_tasks);
      }
    } else if (node->op == PlanOp::kJoin && slot == 1) {
      // Inner relation complete: parked outers can now finish.
      wake.swap(parked);
      pending += wake.size();
    }
  }
  if (replay) {
    for (auto& t : replay_tasks) impl->DispatchPacket(std::move(t));
  }
  for (auto& w : wake) {
    impl->DispatchPacket(
        [this, w = std::move(w)]() mutable { RunJoinOuter(std::move(w)); });
  }
  if (node->op == PlanOp::kDifference && slot == 1) {
    ReleaseDifferenceLeftIfReady();
  }
  TryFinalize();
}

void NodeState::LaunchRelationReplayLocked(
    std::vector<std::function<void()>>* tasks) {
  // All inputs are complete; generate the instruction's tasks. Inner join
  // pages become visible first so outer tasks complete in one pass.
  if (node->op == PlanOp::kJoin) {
    for (auto& p : buffered[1]) inner_pages.push_back(std::move(p));
    buffered[1].clear();
    for (auto& p : buffered[0]) {
      OuterWork w;
      w.outer = std::move(p);
      ++outer_seen;
      ++pending;
      tasks->push_back([this, w = std::move(w)]() mutable {
        RunJoinOuter(std::move(w));
      });
    }
    buffered[0].clear();
    return;
  }
  // Difference: replay the right side as tasks; the left side stays in
  // left_buffer until the right tasks retire.
  if (node->op == PlanOp::kDifference) {
    for (auto& p : buffered[1]) {
      ++pending;
      ++pending_slot[1];
      PendingPage moved = std::move(p);
      tasks->push_back(
          [this, moved]() mutable { RunUnaryTask(1, std::move(moved)); });
    }
    buffered[1].clear();
    for (auto& p : buffered[0]) left_buffer.push_back(std::move(p));
    buffered[0].clear();
    return;
  }
  for (int slot = 0; slot < num_inputs; ++slot) {
    for (auto& p : buffered[static_cast<size_t>(slot)]) {
      ++pending;
      ++pending_slot[static_cast<size_t>(slot)];
      PendingPage moved = std::move(p);
      tasks->push_back(
          [this, slot, moved]() mutable { RunUnaryTask(slot, std::move(moved)); });
    }
    buffered[static_cast<size_t>(slot)].clear();
  }
}

void NodeState::ReleaseDifferenceLeftIfReady() {
  std::vector<PendingPage> release;
  {
    std::lock_guard<std::mutex> lock(mu);
    if (left_released) return;
    if (!RightSideDoneLocked()) return;
    left_released = true;
    release.swap(left_buffer);
    pending += release.size();
    pending_slot[0] += release.size();
  }
  for (auto& p : release) {
    PendingPage moved = std::move(p);
    impl->DispatchPacket([this, moved]() mutable { RunUnaryTask(0, std::move(moved)); });
  }
}

// ---------------------------------------------------------------------------
// NodeState: task bodies
// ---------------------------------------------------------------------------

void NodeState::RunUnaryTask(int slot, PendingPage p) {
  EngineCounters& ctr = query->counters;
  ctr.tasks_executed.fetch_add(1, std::memory_order_relaxed);
  impl->RecordTrace(obs::TraceEventKind::kTaskClaimed, query, node->id, slot,
                    0, nullptr);
  if (!query->failed.load(std::memory_order_relaxed)) {
    // Fetch through the hierarchy: this is the operand delivery that the
    // arbitration path carries in the paper's model.
    auto fetched = impl->buffer()->Fetch(p.id);
    if (!fetched.ok()) {
      query->Fail(fetched.status().WithContext("operand fetch"));
    } else {
      const Page& page = **fetched;
      ctr.packets.fetch_add(1, std::memory_order_relaxed);
      ctr.arbitration_bytes.fetch_add(
          static_cast<uint64_t>(page.payload_bytes()), std::memory_order_relaxed);
      ctr.overhead_bytes.fetch_add(
          static_cast<uint64_t>(impl->opts().packet_overhead_bytes),
          std::memory_order_relaxed);
      impl->RecordTrace(obs::TraceEventKind::kPacketDelivered, query,
                        node->id, slot,
                        static_cast<uint64_t>(page.payload_bytes()), nullptr);

      EdgeSink sink(out.get());
      Status s = Status::OK();
      const Schema& in_schema = node->num_children() > 0
                                    ? node->child(slot).output_schema
                                    : node->output_schema;
      switch (node->op) {
        case PlanOp::kRestrict:
          s = RestrictPage(in_schema, *node->predicate, page, &sink);
          break;
        case PlanOp::kProject: {
          if (!node->dedup) {
            s = ProjectPage(in_schema, project_indices, page, &sink);
            break;
          }
          // Parallel duplicate elimination: hash-partitioned shards so
          // concurrent tasks only contend on colliding partitions.
          for (int i = 0; i < page.num_tuples() && s.ok(); ++i) {
            const std::string projected =
                ProjectTuple(in_schema, page.tuple(i), project_indices);
            DedupShard& shard = *dedup_shards[static_cast<size_t>(
                DedupPartition(Slice(projected),
                               static_cast<int>(dedup_shards.size())))];
            bool fresh;
            {
              std::lock_guard<std::mutex> lock(shard.mu);
              fresh = shard.set.Insert(Slice(projected));
            }
            if (fresh) s = sink.Emit(Slice(projected));
          }
          break;
        }
        case PlanOp::kUnion: {
          if (node->bag_semantics) {
            s = CopyPage(page, &sink);
            break;
          }
          for (int i = 0; i < page.num_tuples() && s.ok(); ++i) {
            bool fresh;
            {
              std::lock_guard<std::mutex> lock(union_mu);
              fresh = union_seen.Insert(page.tuple(i));
            }
            if (fresh) s = sink.Emit(page.tuple(i));
          }
          break;
        }
        case PlanOp::kDifference: {
          std::lock_guard<std::mutex> lock(diff_mu);
          if (slot == 1) {
            diff.ConsumeRight(page);
          } else {
            s = diff.ConsumeLeft(page, &sink);
          }
          break;
        }
        case PlanOp::kAggregate: {
          std::lock_guard<std::mutex> lock(agg_mu);
          s = aggregator->Consume(page);
          break;
        }
        case PlanOp::kAppend:
          s = target_file->AppendPage(page);
          break;
        default:
          s = Status::Internal("unary task on non-unary node");
      }
      if (!s.ok()) query->Fail(s.WithContext("operator task"));
    }
  }
  impl->RecordTrace(obs::TraceEventKind::kTaskExecuted, query, node->id, slot,
                    0, nullptr);
  bool was_right_diff = node->op == PlanOp::kDifference && slot == 1;
  {
    std::lock_guard<std::mutex> lock(mu);
    --pending;
    --pending_slot[static_cast<size_t>(slot)];
  }
  if (was_right_diff) ReleaseDifferenceLeftIfReady();
  TryFinalize();
}

void NodeState::RunJoinOuter(OuterWork w) {
  EngineCounters& ctr = query->counters;
  ctr.tasks_executed.fetch_add(1, std::memory_order_relaxed);
  impl->RecordTrace(obs::TraceEventKind::kTaskClaimed, query, node->id, 0, 0,
                    w.first ? "join-outer" : "join-resume");
  const bool failed = query->failed.load(std::memory_order_relaxed);

  PagePtr outer_page;
  if (!failed) {
    auto fetched = impl->buffer()->Fetch(w.outer.id);
    if (!fetched.ok()) {
      query->Fail(fetched.status().WithContext("join outer fetch"));
    } else {
      outer_page = *fetched;
      if (w.first) {
        ctr.packets.fetch_add(1, std::memory_order_relaxed);
        ctr.arbitration_bytes.fetch_add(
            static_cast<uint64_t>(outer_page->payload_bytes()),
            std::memory_order_relaxed);
        ctr.overhead_bytes.fetch_add(
            static_cast<uint64_t>(impl->opts().packet_overhead_bytes),
            std::memory_order_relaxed);
      }
    }
  }
  w.first = false;

  const Schema& outer_schema = node->child(0).output_schema;
  const Schema& inner_schema = node->child(1).output_schema;

  for (;;) {
    std::vector<PendingPage> batch;
    {
      std::lock_guard<std::mutex> lock(mu);
      for (size_t i = w.cursor; i < inner_pages.size(); ++i) {
        batch.push_back(inner_pages[i]);
      }
    }
    if (batch.empty()) {
      std::lock_guard<std::mutex> lock(mu);
      // Re-check under the lock: a page may have arrived since the
      // snapshot. inner_pages only grows, so cursor comparison is safe.
      if (w.cursor < inner_pages.size()) continue;
      if (input_closed[1] && launched) {
        ++outer_done;
        --pending;
        break;
      }
      // Wait for more inner pages: park this outer ("scan its IRC vector
      // and request the pages it missed", Section 4.2).
      parked.push_back(std::move(w));
      --pending;
      // Finalization cannot trigger here (inner not closed), so return.
      return;
    }
    if (!failed && outer_page != nullptr &&
        !query->failed.load(std::memory_order_relaxed)) {
      EdgeSink sink(out.get());
      for (const PendingPage& inner : batch) {
        auto inner_fetched = impl->buffer()->Fetch(inner.id);
        if (!inner_fetched.ok()) {
          query->Fail(inner_fetched.status().WithContext("join inner fetch"));
          break;
        }
        // Each inner-page delivery is one broadcast packet (Section 4.2).
        ctr.packets.fetch_add(1, std::memory_order_relaxed);
        ctr.arbitration_bytes.fetch_add(
            static_cast<uint64_t>((*inner_fetched)->payload_bytes()),
            std::memory_order_relaxed);
        ctr.overhead_bytes.fetch_add(
            static_cast<uint64_t>(impl->opts().packet_overhead_bytes),
            std::memory_order_relaxed);
        impl->RecordTrace(
            obs::TraceEventKind::kPacketDelivered, query, node->id, 1,
            static_cast<uint64_t>((*inner_fetched)->payload_bytes()),
            "broadcast");
        Status s = JoinPages(outer_schema, inner_schema, *node->predicate,
                             *outer_page, **inner_fetched, &sink);
        if (!s.ok()) {
          query->Fail(s.WithContext("join task"));
          break;
        }
      }
    }
    w.cursor += batch.size();
  }
  impl->RecordTrace(obs::TraceEventKind::kTaskExecuted, query, node->id, 0, 0,
                    "join-outer");
  TryFinalize();
}

// ---------------------------------------------------------------------------
// NodeState: completion
// ---------------------------------------------------------------------------

void NodeState::TryFinalize() {
  {
    std::lock_guard<std::mutex> lock(mu);
    if (finalize_claimed) return;
    if (pending != 0) return;
    if (num_inputs == 0) {
      // Leaf (scan or delete): done when the driver retires.
      if (!source_done) return;
    } else {
      if (!launched) return;
      for (bool c : input_closed) {
        if (!c) return;
      }
      if (node->op == PlanOp::kJoin) {
        if (outer_seen != outer_done || !parked.empty()) return;
      }
      if (node->op == PlanOp::kDifference && !left_released) return;
    }
    finalize_claimed = true;
  }
  RunFinalizeAndClose();
}

void NodeState::RunFinalizeAndClose() {
  if (!query->failed.load(std::memory_order_relaxed)) {
    Status s = Status::OK();
    switch (node->op) {
      case PlanOp::kAggregate: {
        EdgeSink sink(out.get());
        std::lock_guard<std::mutex> lock(agg_mu);
        s = aggregator->Finish(&sink);
        break;
      }
      case PlanOp::kAppend: {
        s = impl->storage()->SyncStats(target_file->relation());
        break;
      }
      default:
        break;
    }
    if (!s.ok()) query->Fail(s.WithContext("finalize"));
  }
  Status close = out->CloseProducer();
  if (!close.ok()) query->Fail(close);
}

// ---------------------------------------------------------------------------
// ExecutorImpl: drivers
// ---------------------------------------------------------------------------

void ExecutorImpl::ScanStep(NodeState* node,
                            std::shared_ptr<std::vector<PageId>> ids,
                            size_t idx) {
  node->query->counters.tasks_executed.fetch_add(1, std::memory_order_relaxed);
  if (node->query->failed.load(std::memory_order_relaxed)) {
    idx = ids->size();  // Stop producing.
  }
  if (idx >= ids->size()) {
    {
      std::lock_guard<std::mutex> lock(node->mu);
      node->source_done = true;
      --node->pending;
    }
    node->TryFinalize();
    return;
  }
  // Memory-cell throttle: sources yield while the packet backlog exceeds
  // cells-per-processor * processors (the paper's "two memory cells for
  // each processor" resource bound).
  if (ThrottleExceeded()) {
    Dispatch([this, node, ids, idx] { ScanStep(node, ids, idx); });
    std::this_thread::yield();
    return;
  }
  auto page = buffer_.Fetch((*ids)[idx]);
  if (!page.ok()) {
    node->query->Fail(page.status().WithContext("scan fetch"));
  } else {
    RecordTrace(obs::TraceEventKind::kTaskExecuted, node->query,
                node->node->id, 0,
                static_cast<uint64_t>((*page)->payload_bytes()), "scan-step");
    Status s = node->out->EmitPage(*page);
    if (!s.ok()) node->query->Fail(s.WithContext("scan emit"));
  }
  Dispatch([this, node, ids, idx] { ScanStep(node, ids, idx + 1); });
}

void ExecutorImpl::DeleteDriver(NodeState* node) {
  QueryRuntime* q = node->query;
  q->counters.tasks_executed.fetch_add(1, std::memory_order_relaxed);
  if (!q->failed.load(std::memory_order_relaxed)) {
    const Schema& schema = node->node->output_schema;
    const Expr* pred = node->node->predicate.get();
    Status pred_error = Status::OK();
    auto matcher = [&](const TupleView& t) {
      auto r = pred->EvalBool(t, nullptr);
      if (!r.ok()) {
        if (pred_error.ok()) pred_error = r.status();
        return false;
      }
      return *r;
    };
    const uint64_t before_bytes =
        node->target_file->tuple_count() *
        static_cast<uint64_t>(schema.tuple_width());
    auto removed = node->target_file->DeleteWhere(matcher);
    q->counters.packets.fetch_add(1, std::memory_order_relaxed);
    q->counters.arbitration_bytes.fetch_add(before_bytes,
                                            std::memory_order_relaxed);
    q->counters.overhead_bytes.fetch_add(
        static_cast<uint64_t>(opts_.packet_overhead_bytes),
        std::memory_order_relaxed);
    RecordTrace(obs::TraceEventKind::kTaskExecuted, q, node->node->id, 0,
                before_bytes, "delete");
    if (!removed.ok()) {
      q->Fail(removed.status().WithContext("delete"));
    } else if (!pred_error.ok()) {
      q->Fail(pred_error.WithContext("delete predicate"));
    } else {
      Status s = storage_->SyncStats(node->target_file->relation());
      if (!s.ok()) q->Fail(s);
    }
  }
  {
    std::lock_guard<std::mutex> lock(node->mu);
    node->source_done = true;
    --node->pending;
  }
  node->TryFinalize();
}

// ---------------------------------------------------------------------------
// ExecutorImpl: query preparation and wiring
// ---------------------------------------------------------------------------

StatusOr<std::unique_ptr<QueryRuntime>> ExecutorImpl::Prepare(
    const PlanNode& plan, size_t batch_index) {
  auto q = std::make_unique<QueryRuntime>();
  q->qid = next_qid_.fetch_add(1);
  q->batch_index = batch_index;
  q->plan = plan.Clone();
  Analyzer analyzer(&storage_->catalog());
  DFDB_ASSIGN_OR_RETURN(q->analysis, analyzer.Resolve(q->plan.get()));
  NodeState* root = BuildNode(q->plan.get(), nullptr, 0, q.get());
  if (root == nullptr) {
    return Status::Internal("failed to build node graph");
  }
  q->root = root;
  q->result.set_schema(q->plan->output_schema);
  return q;
}

NodeState* ExecutorImpl::BuildNode(const PlanNode* n, NodeState* parent,
                                   int slot, QueryRuntime* q) {
  auto state = std::make_unique<NodeState>();
  NodeState* ns = state.get();
  ns->impl = this;
  ns->query = q;
  ns->node = n;
  ns->parent = parent;
  ns->parent_slot = slot;
  ns->num_inputs = n->num_children();
  ns->input_closed.assign(static_cast<size_t>(ns->num_inputs), false);
  ns->pending_slot.assign(static_cast<size_t>(std::max(ns->num_inputs, 1)), 0);
  ns->buffered.resize(static_cast<size_t>(ns->num_inputs));
  // Relation granularity defers interior instructions until their operands
  // complete; leaves are always immediately executable.
  ns->launched =
      opts_.granularity != Granularity::kRelation || ns->num_inputs == 0;

  // Op-specific static setup.
  Status setup = Status::OK();
  switch (n->op) {
    case PlanOp::kProject: {
      const Schema& in = n->child(0).output_schema;
      for (const std::string& name : n->columns) {
        auto idx = in.ColumnIndex(name);
        if (!idx.ok()) {
          setup = idx.status();
          break;
        }
        ns->project_indices.push_back(*idx);
      }
      if (n->dedup) {
        const int shards = std::max(1, opts_.dedup_partitions);
        for (int i = 0; i < shards; ++i) {
          ns->dedup_shards.push_back(std::make_unique<NodeState::DedupShard>());
        }
      }
      break;
    }
    case PlanOp::kAggregate: {
      auto agg = Aggregator::Create(n->child(0).output_schema, n->output_schema,
                                    n->columns, n->aggregates);
      if (!agg.ok()) {
        setup = agg.status();
      } else {
        ns->aggregator.emplace(*std::move(agg));
      }
      break;
    }
    case PlanOp::kAppend:
    case PlanOp::kDelete: {
      auto file = storage_->GetHeapFile(n->relation);
      if (!file.ok()) {
        setup = file.status();
      } else {
        ns->target_file = *file;
      }
      break;
    }
    default:
      break;
  }
  if (!setup.ok()) {
    q->Fail(setup.WithContext("node setup"));
  }

  // Output edge: unit is the configured page size, or one tuple under
  // tuple granularity.
  const int tuple_width = std::max(1, n->output_schema.tuple_width());
  const int unit = opts_.granularity == Granularity::kTuple
                       ? tuple_width
                       : std::max(opts_.page_bytes, tuple_width);
  const RelationId pseudo = 0xD0000000u + static_cast<RelationId>(n->id);
  const bool count_distribution = n->op != PlanOp::kScan;
  const int node_id = n->id;
  if (parent == nullptr) {
    // Root: deliver into the query result.
    ns->out = std::make_unique<Edge>(
        pseudo, tuple_width, unit,
        [this, q, node_id, count_distribution](PagePtr page) {
          if (count_distribution) {
            q->counters.distribution_bytes.fetch_add(
                static_cast<uint64_t>(page->payload_bytes()),
                std::memory_order_relaxed);
          }
          q->counters.pages_produced.fetch_add(1, std::memory_order_relaxed);
          q->counters.tuples_produced.fetch_add(
              static_cast<uint64_t>(page->num_tuples()),
              std::memory_order_relaxed);
          RecordTrace(obs::TraceEventKind::kPageProduced, q, node_id, -1,
                      static_cast<uint64_t>(page->payload_bytes()), "root");
          std::lock_guard<std::mutex> lock(q->result_mu);
          q->result.AddPage(std::move(page));
        },
        [this, q] { OnQueryDone(q); });
  } else {
    ns->out = std::make_unique<Edge>(
        pseudo, tuple_width, unit,
        [this, q, node_id, parent, slot, count_distribution](PagePtr page) {
          if (count_distribution) {
            q->counters.distribution_bytes.fetch_add(
                static_cast<uint64_t>(page->payload_bytes()),
                std::memory_order_relaxed);
          }
          q->counters.pages_produced.fetch_add(1, std::memory_order_relaxed);
          q->counters.tuples_produced.fetch_add(
              static_cast<uint64_t>(page->num_tuples()),
              std::memory_order_relaxed);
          RecordTrace(obs::TraceEventKind::kPageProduced, q, node_id, -1,
                      static_cast<uint64_t>(page->payload_bytes()), nullptr);
          const PageId id = buffer_.PutNew(page);
          q->RecordIntermediate(id);
          parent->OnPage(slot, PendingPage{std::move(page), id});
        },
        [parent, slot] { parent->OnClose(slot); });
  }

  // Children are wired after this node exists so their edges can reference
  // it.
  for (int i = 0; i < n->num_children(); ++i) {
    BuildNode(&n->child(i), ns, i, q);
  }

  q->nodes.push_back(std::move(state));
  return ns;
}

void ExecutorImpl::LaunchQuery(QueryRuntime* q) {
  // Start every source driver. Leaves are "immediately executable"
  // (Section 3.1) under every granularity.
  for (auto& node : q->nodes) {
    NodeState* ns = node.get();
    if (ns->node->op == PlanOp::kScan) {
      auto file = storage_->GetHeapFile(ns->node->relation);
      if (!file.ok()) {
        q->Fail(file.status());
        std::lock_guard<std::mutex> lock(ns->mu);
        ns->source_done = true;
        continue;
      }
      Status flushed = (*file)->Flush();
      if (!flushed.ok()) q->Fail(flushed);
      auto ids = std::make_shared<std::vector<PageId>>((*file)->PageIds());
      {
        std::lock_guard<std::mutex> lock(ns->mu);
        ++ns->pending;
      }
      Dispatch([this, ns, ids] { ScanStep(ns, ids, 0); });
    } else if (ns->node->op == PlanOp::kDelete) {
      {
        std::lock_guard<std::mutex> lock(ns->mu);
        ++ns->pending;
      }
      Dispatch([this, ns] { DeleteDriver(ns); });
    }
  }
  // Degenerate plans whose leaves failed setup still need to terminate.
  for (auto& node : q->nodes) {
    node->TryFinalize();
  }
}

void ExecutorImpl::OnQueryDone(QueryRuntime* q) {
  // Per-query completion timestamp (read by Run() after the join).
  q->completed_at = std::chrono::steady_clock::now();
  q->completed = true;
  // Free intermediate pages (they have been consumed).
  {
    std::lock_guard<std::mutex> lock(q->interm_mu);
    for (PageId id : q->intermediates) {
      (void)buffer_.Discard(id);
    }
    q->intermediates.clear();
  }
  conflicts_.Release(q->qid);
  std::vector<QueryRuntime*> to_launch;
  bool all_done = false;
  {
    std::lock_guard<std::mutex> lock(admit_mu_);
    --active_queries_;
    for (auto it = waiting_.begin(); it != waiting_.end();) {
      QueryRuntime* cand = *it;
      if (conflicts_.TryAdmit(cand->qid, cand->analysis.read_set,
                              cand->analysis.write_set)) {
        ++active_queries_;
        to_launch.push_back(cand);
        it = waiting_.erase(it);
      } else {
        ++it;
      }
    }
    all_done = active_queries_ == 0 && waiting_.empty();
  }
  for (QueryRuntime* cand : to_launch) LaunchQuery(cand);
  if (all_done) queue_.Close();
}

void ExecutorImpl::WorkerLoop(int worker_index) {
  const EngineFaultPlan& fp = opts_.fault_plan;
  // Clamp so at least one worker survives to drain the queue.
  const int doomed_count =
      std::min(fp.abandon_workers, opts_.num_processors - 1);
  const bool doomed = worker_index < doomed_count;
  uint64_t claimed = 0;
  for (;;) {
    auto task = queue_.Pop();
    if (!task.has_value()) return;
    if (doomed && ++claimed > fp.abandon_after_tasks) {
      // Fail-stop at a packet boundary: the claimed task has not run, so
      // handing it back re-executes it from scratch on a survivor and the
      // results are exactly those of a healthy run.
      counters_.faults_injected.fetch_add(1, std::memory_order_relaxed);
      counters_.workers_abandoned.fetch_add(1, std::memory_order_relaxed);
      RecordTrace(obs::TraceEventKind::kFaultInjected, nullptr, -1,
                  worker_index, 0, "worker-abandon");
      if (queue_.TryPush(std::move(*task))) {
        counters_.redispatched_tasks.fetch_add(1, std::memory_order_relaxed);
        RecordTrace(obs::TraceEventKind::kFaultRecovered, nullptr, -1,
                    worker_index, 0, "task-redispatched");
      }
      return;
    }
    (*task)();
  }
}

Status ExecutorImpl::Run(const std::vector<const PlanNode*>& plans,
                         std::vector<QueryResult>* results, ExecStats* stats) {
  results->clear();
  if (plans.empty()) return Status::OK();
  std::vector<std::unique_ptr<QueryRuntime>> runtimes;
  runtimes.reserve(plans.size());
  for (size_t i = 0; i < plans.size(); ++i) {
    if (plans[i] == nullptr) return Status::InvalidArgument("null plan");
    DFDB_ASSIGN_OR_RETURN(auto q, Prepare(*plans[i], i));
    runtimes.push_back(std::move(q));
  }

  buffer_.ResetStats();
  const auto start = std::chrono::steady_clock::now();
  run_start_ = start;

  // MC admission: admit every non-conflicting query now, queue the rest.
  std::vector<QueryRuntime*> to_launch;
  {
    std::lock_guard<std::mutex> lock(admit_mu_);
    for (auto& q : runtimes) {
      if (conflicts_.TryAdmit(q->qid, q->analysis.read_set,
                              q->analysis.write_set)) {
        ++active_queries_;
        to_launch.push_back(q.get());
      } else {
        waiting_.push_back(q.get());
      }
    }
  }

  // Poisoned packets (corrupted on the wire): workers detect the bad
  // checksum and drop them; no operator ever sees the payload.
  for (int i = 0; i < std::max(0, opts_.fault_plan.poison_packets); ++i) {
    counters_.faults_injected.fetch_add(1, std::memory_order_relaxed);
    RecordTrace(obs::TraceEventKind::kFaultInjected, nullptr, -1, -1, 0,
                "poison-packet");
    queue_.Push([this] {
      counters_.poison_dropped.fetch_add(1, std::memory_order_relaxed);
      RecordTrace(obs::TraceEventKind::kFaultRecovered, nullptr, -1, -1, 0,
                  "poison-dropped");
    });
  }

  // Enqueue every admitted query's initial tasks BEFORE starting workers:
  // otherwise these pushes race with worker re-dispatches (scan throttle
  // yields, parked join outers) and even a single-worker schedule becomes
  // timing-dependent, breaking the deterministic-export contract.
  for (QueryRuntime* q : to_launch) LaunchQuery(q);

  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(opts_.num_processors));
  for (int i = 0; i < opts_.num_processors; ++i) {
    workers.emplace_back([this, i] { WorkerLoop(i); });
  }
  for (auto& w : workers) w.join();

  const auto end = std::chrono::steady_clock::now();

  // Workers have quiesced: merge the trace shards once, share across the
  // batch aggregate and every per-query snapshot.
  std::shared_ptr<const obs::Trace> trace = trace_.Finish();

  // Batch aggregate = per-query work counters + pool-wide fault counters +
  // buffer-hierarchy traffic.
  *stats = ExecStats{};
  stats->wall_seconds = std::chrono::duration<double>(end - start).count();
  for (auto& q : runtimes) {
    stats->tasks_executed += q->counters.tasks_executed.load();
    stats->packets += q->counters.packets.load();
    stats->arbitration_bytes += q->counters.arbitration_bytes.load();
    stats->distribution_bytes += q->counters.distribution_bytes.load();
    stats->overhead_bytes += q->counters.overhead_bytes.load();
    stats->pages_produced += q->counters.pages_produced.load();
    stats->tuples_produced += q->counters.tuples_produced.load();
  }
  stats->faults_injected = counters_.faults_injected.load();
  stats->workers_abandoned = counters_.workers_abandoned.load();
  stats->redispatched_tasks = counters_.redispatched_tasks.load();
  stats->poison_dropped = counters_.poison_dropped.load();
  stats->buffer = buffer_.stats();
  stats->trace = trace;

  results->resize(plans.size());
  for (auto& q : runtimes) {
    if (q->failed.load()) {
      std::lock_guard<std::mutex> lock(q->err_mu);
      return q->error.WithContext(StrFormat("query %llu",
                                            static_cast<unsigned long long>(
                                                q->qid)));
    }
    // Per-query snapshot: this query's own work, timed from batch start to
    // its completion. Pool-wide fault/buffer counters stay zero here.
    ExecStats qs;
    qs.wall_seconds =
        q->completed
            ? std::chrono::duration<double>(q->completed_at - start).count()
            : stats->wall_seconds;
    qs.tasks_executed = q->counters.tasks_executed.load();
    qs.packets = q->counters.packets.load();
    qs.arbitration_bytes = q->counters.arbitration_bytes.load();
    qs.distribution_bytes = q->counters.distribution_bytes.load();
    qs.overhead_bytes = q->counters.overhead_bytes.load();
    qs.pages_produced = q->counters.pages_produced.load();
    qs.tuples_produced = q->counters.tuples_produced.load();
    qs.trace = trace;
    q->result.set_stats(std::move(qs));
    (*results)[q->batch_index] = std::move(q->result);
  }
  return Status::OK();
}

}  // namespace internal

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

Executor::Executor(StorageEngine* storage, ExecOptions options)
    : storage_(storage), options_(options) {
  DFDB_CHECK(storage != nullptr);
  DFDB_CHECK(options_.num_processors >= 1);
  DFDB_CHECK(options_.memory_cells_per_processor >= 1);
}

Executor::~Executor() = default;

StatusOr<QueryResult> Executor::Execute(const PlanNode& plan,
                                        ExecStats* batch_stats) {
  std::vector<const PlanNode*> plans{&plan};
  DFDB_ASSIGN_OR_RETURN(std::vector<QueryResult> results,
                        ExecuteBatch(plans, batch_stats));
  return std::move(results[0]);
}

StatusOr<std::vector<QueryResult>> Executor::ExecuteBatch(
    const std::vector<const PlanNode*>& plans, ExecStats* batch_stats) {
  internal::ExecutorImpl impl(storage_, options_);
  std::vector<QueryResult> results;
  ExecStats stats;
  Status s = impl.Run(plans, &results, &stats);
  if (batch_stats != nullptr) *batch_stats = std::move(stats);
  if (!s.ok()) return s;
  return results;
}

}  // namespace dfdb

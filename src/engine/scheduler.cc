/// \file scheduler.cc
/// \brief Resident scheduler: persistent worker pool, MC admission queue,
/// and the dataflow execution core (moved here from executor.cc, which is
/// now a thin compatibility wrapper).

#include "engine/scheduler.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <thread>
#include <vector>

#include "common/blocking_queue.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "engine/concurrency.h"
#include "engine/edge.h"
#include "index/access_path.h"
#include "obs/trace.h"
#include "operators/aggregator.h"
#include "operators/dedup.h"
#include "operators/kernels.h"
#include "operators/set_ops.h"
#include "ra/analyzer.h"
#include "ra/optimizer.h"
#include "storage/buffer_manager.h"

namespace dfdb {
namespace internal {

class SchedulerImpl;

/// A page travelling between nodes: the live pointer plus its id in the
/// buffer hierarchy (fetching by id is what generates storage traffic).
/// Pages on fused edges are delivered `direct`: they never enter the
/// hierarchy, so the consumer uses the live pointer and skips the fetch.
struct PendingPage {
  PagePtr page;
  PageId id;
  bool direct = false;
};

/// One outer page's join progress: the paper's IRC vector collapses to a
/// cursor because inner pages accumulate in arrival order.
struct OuterWork {
  PendingPage outer;
  size_t cursor = 0;
  bool first = true;
};

struct QueryRuntime;

/// \brief Runtime state of one plan node (one "instruction").
struct NodeState {
  SchedulerImpl* impl = nullptr;
  QueryRuntime* query = nullptr;
  const PlanNode* node = nullptr;
  NodeState* parent = nullptr;  // Null for the root.
  int parent_slot = 0;
  std::unique_ptr<Edge> out;

  // Static (post-analysis) configuration.
  int num_inputs = 0;
  std::vector<int> project_indices;  // kProject.
  HeapFile* target_file = nullptr;   // kAppend / kDelete.
  /// Predicate program compiled once per query (kRestrict / kDelete);
  /// empty when compilation was refused and the node interprets per tuple.
  std::optional<CompiledPredicate> compiled_pred;
  /// Near-data pushdown (kScan on a marked plan): the consuming restrict's
  /// predicate, compiled against the scan schema, run by the buffer
  /// hierarchy during the cache -> local transfer so only survivors ride
  /// the edge. Empty = raw path.
  std::optional<CompiledPredicate> pushdown_pred;
  /// Join program with extracted equi-keys (kJoin).
  std::optional<CompiledJoinPredicate> compiled_join;
  /// Pipeline fusion (unary-chain collapse): the steps of every absorbed
  /// fused producer below this node plus this node's own operation, run as
  /// one pass per input page. The absorbed nodes have no NodeState — their
  /// input wires directly to this node.
  std::optional<FusedPipeline> fused;
  int fused_chain_len = 0;  ///< Absorbed producers (elision accounting).

  std::mutex mu;
  std::vector<bool> input_closed;
  std::vector<uint64_t> pending_slot;
  uint64_t pending = 0;
  /// Relation-granularity operand buffers (per slot).
  std::vector<std::vector<PendingPage>> buffered;
  /// True once tasks may be generated (always true outside kRelation).
  bool launched = true;
  bool finalize_claimed = false;
  /// Leaves (scan/delete): set when the driver finished.
  bool source_done = false;

  // kJoin.
  std::vector<PendingPage> inner_pages;
  std::vector<OuterWork> parked;
  uint64_t outer_seen = 0;
  uint64_t outer_done = 0;

  // kProject with dedup: sharded eliminators for parallel dedup.
  struct DedupShard {
    std::mutex mu;
    DuplicateEliminator set;
  };
  std::vector<std::unique_ptr<DedupShard>> dedup_shards;

  // kUnion (set semantics).
  std::mutex union_mu;
  DuplicateEliminator union_seen;

  // kDifference.
  std::mutex diff_mu;
  DifferenceOp diff;
  bool left_released = false;
  std::vector<PendingPage> left_buffer;

  // kAggregate.
  std::mutex agg_mu;
  std::optional<Aggregator> aggregator;

  // --- producer-side events (called by the child's edge wiring) ---
  void OnPage(int slot, PendingPage p);
  void OnClose(int slot);

  // --- task bodies ---
  void RunUnaryTask(int slot, PendingPage p);
  void RunJoinOuter(OuterWork w);

  // --- scheduling helpers ---
  void DispatchStream(int slot, PendingPage p);
  void LaunchRelationReplayLocked(std::vector<std::function<void()>>* tasks);
  void ReleaseDifferenceLeftIfReady();
  void TryFinalize();
  void RunFinalizeAndClose();
  bool RightSideDoneLocked() const {
    return input_closed[1] && pending_slot[1] == 0 && launched;
  }
};

/// \brief Shared completion state between a QueryHandle and the scheduler.
struct QueryState {
  uint64_t qid = 0;
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  bool taken = false;
  Status status = Status::OK();
  QueryResult result;
  std::atomic<uint64_t> queue_wait_ns{0};
};

/// \brief Per-query execution context, owned by the scheduler from Submit
/// until it is reaped after completion.
struct QueryRuntime {
  uint64_t qid = 0;
  size_t batch_index = 0;
  std::unique_ptr<PlanNode> plan;
  QueryAnalysis analysis;
  std::vector<std::unique_ptr<NodeState>> nodes;
  NodeState* root = nullptr;
  std::shared_ptr<QueryState> state;

  /// Per-query work counters: attributing packets/bytes to the query that
  /// caused them is what lets stats ride on the QueryResult. Pool-wide
  /// effects (faults, buffer traffic) stay on the SchedulerImpl.
  EngineCounters counters;

  std::chrono::steady_clock::time_point submitted_at{};
  std::chrono::steady_clock::time_point completed_at{};
  uint64_t queue_wait_ns = 0;     ///< Set at admission (0 = immediate).
  uint64_t failed_probes = 0;     ///< Failed re-admission probes while queued.
  uint64_t sched_skips = 0;       ///< Conflicting bypasses while queued.
  bool was_queued = false;
  /// Read-only query admitted around the MC queue (snapshot mode): it holds
  /// no locks, so completion must not probe the admission queue.
  bool bypassed_admission = false;

  /// The immutable point-in-time view this query's scans execute against,
  /// stamped at admission (invalid in barrier mode). Released when the
  /// runtime is reaped — outside admit_mu_ — which is what lets version GC
  /// key off "no live snapshot can see it".
  Snapshot snapshot;

  /// Completion/reaping protocol: `in_flight` counts the frames that may
  /// still touch this runtime, plus one "completion reference" held from
  /// construction until OnQueryDone drops it (after setting `completed`).
  /// The count therefore cannot reach zero before the query completes, and
  /// whichever frame's decrement reaches zero owns the runtime exclusively
  /// and must reap it. No thread may touch the runtime after its own
  /// decrement unless that decrement was the last — reading any member
  /// (even an atomic) after releasing the reference races with the reaper.
  std::atomic<bool> completed{false};
  std::atomic<int64_t> in_flight{1};

  std::mutex result_mu;
  QueryResult result;

  std::atomic<bool> failed{false};
  std::mutex err_mu;
  Status error;

  std::mutex interm_mu;
  std::vector<PageId> intermediates;

  void Fail(const Status& status) {
    bool expected = false;
    if (failed.compare_exchange_strong(expected, true)) {
      std::lock_guard<std::mutex> lock(err_mu);
      error = status;
    }
  }

  void RecordIntermediate(PageId id) {
    std::lock_guard<std::mutex> lock(interm_mu);
    intermediates.push_back(id);
  }
};

/// \brief The resident scheduler: one persistent worker pool, one buffer
/// hierarchy, one admission queue — shared by every submitted query.
class SchedulerImpl {
 public:
  SchedulerImpl(StorageEngine* storage, SchedulerOptions options)
      : storage_(storage),
        options_(std::move(options)),
        buffer_(&storage->page_store(), options_.exec.local_memory_pages,
                options_.exec.disk_cache_pages),
        trace_(options_.exec.enable_trace),
        admission_(options_.max_admission_skips) {
    DFDB_CHECK(storage != nullptr);
    DFDB_CHECK(options_.exec.num_processors >= 1);
    DFDB_CHECK(options_.exec.memory_cells_per_processor >= 1);
    run_start_ = std::chrono::steady_clock::now();
    mvcc_baseline_ = storage->mvcc_stats();
    // Poisoned packets (corrupted on the wire) are injected once, ahead of
    // any query's tasks: workers detect the bad checksum and drop them.
    for (int i = 0; i < std::max(0, options_.exec.fault_plan.poison_packets);
         ++i) {
      counters_.faults_injected.fetch_add(1, std::memory_order_relaxed);
      RecordTrace(obs::TraceEventKind::kFaultInjected, nullptr, -1, -1, 0,
                  "poison-packet");
      queue_.Push(Task{nullptr, [this] {
                         counters_.poison_dropped.fetch_add(
                             1, std::memory_order_relaxed);
                         RecordTrace(obs::TraceEventKind::kFaultRecovered,
                                     nullptr, -1, -1, 0, "poison-dropped");
                       }});
    }
    if (!options_.defer_worker_start) Start();
  }

  ~SchedulerImpl() { Shutdown(); }

  const SchedulerOptions& options() const { return options_; }
  const ExecOptions& opts() const { return options_.exec; }

  StatusOr<QueryHandle> Submit(const PlanNode& plan);
  void Start();
  void Shutdown();
  ExecStats AggregateStats() const;
  void SnapshotMetrics(obs::MetricsRegistry* registry) const;

  std::shared_ptr<const obs::Trace> FinishTrace() {
    DFDB_CHECK(workers_joined())
        << "FinishTrace requires Shutdown() (workers must have quiesced)";
    if (finished_trace_ == nullptr) finished_trace_ = trace_.Finish();
    return finished_trace_;
  }

  /// One unit of pool work, tagged with the query it belongs to (null for
  /// pool-level work such as poison packets) so workers can account
  /// per-query in-flight execution for completion-safe reaping.
  struct Task {
    QueryRuntime* query = nullptr;
    std::function<void()> fn;
  };

  void Dispatch(QueryRuntime* q, std::function<void()> fn) {
    queue_.Push(Task{q, std::move(fn)});
  }

  /// Dispatches an enabled instruction packet. The packet occupies a memory
  /// cell from dispatch until a processor picks it up ("As soon as all the
  /// required data is present, the contents of the cell are sent to some
  /// processor for execution. This frees the cell", Section 2.2).
  void DispatchPacket(QueryRuntime* q, std::function<void()> fn) {
    enabled_packets_.fetch_add(1, std::memory_order_relaxed);
    queue_.Push(Task{q, [this, fn = std::move(fn)] {
                       enabled_packets_.fetch_sub(1,
                                                  std::memory_order_relaxed);
                       fn();
                     }});
  }

  /// True while every memory cell is occupied by an enabled packet; scan
  /// sources yield instead of producing more operands.
  bool ThrottleExceeded() const {
    return enabled_packets_.load(std::memory_order_relaxed) >=
           static_cast<size_t>(opts().num_processors) *
               static_cast<size_t>(opts().memory_cells_per_processor);
  }

  BufferManager* buffer() { return &buffer_; }
  StorageEngine* storage() { return storage_; }
  /// Pool-wide counters (fault injection outcomes). Per-query work counters
  /// live on QueryRuntime.
  EngineCounters& counters() { return counters_; }

  /// Steady-clock nanoseconds since the scheduler started (trace
  /// timestamps).
  int64_t NowNs() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - run_start_)
        .count();
  }

  bool trace_enabled() const { return trace_.enabled(); }

  /// Records one trace event; no-op (one branch) when tracing is off.
  /// Events are keyed by submission index, not qid, so two
  /// identically-seeded runs produce identical traces.
  void RecordTrace(obs::TraceEventKind kind, const QueryRuntime* q, int32_t a,
                   int32_t b, uint64_t bytes, const char* detail) {
    if (!trace_.enabled()) return;
    trace_.Record(kind, q != nullptr ? q->batch_index : 0, a, b, bytes,
                  detail, NowNs());
  }

  /// Called by the root edge's close wiring.
  void OnQueryDone(QueryRuntime* q);

  /// Scan driver step; re-dispatches itself page by page.
  void ScanStep(NodeState* node, std::shared_ptr<std::vector<PageId>> ids,
                size_t idx);
  void DeleteDriver(NodeState* node);

 private:
  StatusOr<std::unique_ptr<QueryRuntime>> Prepare(const PlanNode& plan,
                                                  size_t batch_index);
  /// \p plan_parent is the node's consumer in the *plan* (distinct from the
  /// runtime \p parent when a fused chain was absorbed in between); it is
  /// what the per-edge pipeline decision is evaluated against.
  NodeState* BuildNode(const PlanNode* n, NodeState* parent, int slot,
                       QueryRuntime* q, const PlanNode* plan_parent);
  /// True when the edge \p producer -> \p consumer runs fused under the
  /// session policy. With \p count_fallback set, a plan-marked edge the
  /// safety conditions reject is recorded as a runtime fallback (the
  /// absorption chain walk passes false; the edge is classified — and
  /// counted — once, when its producer node is built).
  bool EdgeFused(const PlanNode& producer, const PlanNode& consumer,
                 QueryRuntime* q, bool count_fallback = true);
  /// Compiles the absorbed producer chain (nearest-first) plus \p ns's own
  /// operation into ns->fused.
  Status BuildFusedChain(NodeState* ns,
                         const std::vector<const PlanNode*>& chain);
  /// Enqueues every source-driver task of \p q as one atomic batch. The
  /// caller must hold an `in_flight` reference on \p q (see MaybeReap).
  void LaunchQuery(QueryRuntime* q);
  /// Snapshot mode, at admission (admit_mu_ held): publishes committed
  /// state the query is entitled to see, captures its snapshot, and
  /// registers its write ownership. Because admissions are serialized under
  /// admit_mu_, snapshot timestamps derive from admission order — the
  /// deterministic-replay property.
  void StampSnapshotLocked(QueryRuntime* q);
  bool snapshot_mode() const {
    return options_.concurrency == ConcurrencyMode::kSnapshot;
  }
  /// Storage-wide MVCC stats attributed to this scheduler: monotone
  /// counters are reported as deltas since construction (so re-running an
  /// identical batch on warm storage exports identical counters), gauges
  /// (snapshots_open, versions_live, last_commit_ts) stay absolute.
  MvccStats MvccDelta() const {
    MvccStats mv = storage_->mvcc_stats();
    mv.snapshots_captured -= mvcc_baseline_.snapshots_captured;
    mv.pages_copied -= mvcc_baseline_.pages_copied;
    mv.gc_reclaimed -= mvcc_baseline_.gc_reclaimed;
    mv.commits -= mvcc_baseline_.commits;
    return mv;
  }
  /// Builds the per-query ExecStats snapshot and fulfills the handle.
  void FulfillLocked(QueryRuntime* q);
  /// Destroys a completed query's runtime once no worker frame can still
  /// reference its node graph.
  void MaybeReap(QueryRuntime* q);
  void WorkerLoop(int worker_index);

  bool workers_joined() const {
    std::lock_guard<std::mutex> lock(admit_mu_);
    return shutdown_complete_;
  }

  StorageEngine* storage_;
  const SchedulerOptions options_;
  BufferManager buffer_;
  EngineCounters counters_;
  obs::TraceRecorder trace_;
  std::shared_ptr<const obs::Trace> finished_trace_;
  std::chrono::steady_clock::time_point run_start_{};
  BlockingQueue<Task> queue_;
  std::atomic<size_t> enabled_packets_{0};
  std::atomic<int> busy_workers_{0};
  std::atomic<int> peak_busy_workers_{0};

  /// Taken for the full duration of Shutdown(); never taken under
  /// admit_mu_ (Shutdown acquires admit_mu_ inside it, not vice versa).
  std::mutex shutdown_serial_mu_;
  mutable std::mutex admit_mu_;
  std::condition_variable drain_cv_;
  AdmissionQueue admission_;
  std::map<uint64_t, std::unique_ptr<QueryRuntime>> runtimes_;
  uint64_t next_qid_ = 1;
  uint64_t next_batch_index_ = 0;
  int active_queries_ = 0;
  /// Snapshot mode: relation -> qid of the admitted writer mutating it
  /// (under admit_mu_). StampSnapshotLocked must not commit a relation
  /// another writer still owns — its uncommitted head is private until that
  /// writer completes.
  std::map<std::string, uint64_t> writing_relations_;
  /// Storage MVCC counters at construction (see MvccDelta).
  MvccStats mvcc_baseline_;
  bool started_ = false;
  bool shutting_down_ = false;
  bool shutdown_complete_ = false;
  std::vector<std::thread> workers_;

  // Lifetime totals (under admit_mu_), accumulated as queries retire.
  struct SchedTotals {
    uint64_t submitted = 0;
    uint64_t admitted_immediately = 0;
    uint64_t queued = 0;
    uint64_t completed = 0;
    uint64_t cancelled = 0;
    uint64_t queue_wait_ns = 0;
    ExecStats work;  // Summed per-query work counters of completed queries.
  } totals_;
};

namespace {

/// PageSink adapter feeding an Edge.
class EdgeSink final : public PageSink {
 public:
  explicit EdgeSink(Edge* edge) : edge_(edge) {}
  Status Emit(Slice tuple) override { return edge_->EmitTuple(tuple); }
  Status EmitParts(const Slice* parts, size_t n) override {
    return edge_->EmitTupleParts(parts, n);
  }

 private:
  Edge* edge_;
};

/// PushdownFilter adapter over a compiled predicate (single-relation form:
/// the right-side tuple is always null for a restrict-over-scan).
class CompiledFilter final : public PushdownFilter {
 public:
  explicit CompiledFilter(const CompiledPredicate* pred) : pred_(pred) {}
  bool Matches(const char* tuple) const override {
    return pred_->Matches(tuple, nullptr);
  }

 private:
  const CompiledPredicate* pred_;
};

/// PushdownSink adapter feeding an Edge: survivors repack into unit pages.
class EdgePushdownSink final : public PushdownSink {
 public:
  explicit EdgePushdownSink(Edge* edge) : edge_(edge) {}
  Status Emit(Slice tuple) override { return edge_->EmitTuple(tuple); }

 private:
  Edge* edge_;
};

/// Scoped in-flight reference: prevents a query's runtime from being reaped
/// while the holder's frames may still touch its node graph.
class InFlightGuard {
 public:
  explicit InFlightGuard(QueryRuntime* q) : q_(q) {
    q_->in_flight.fetch_add(1, std::memory_order_acq_rel);
  }
  DFDB_DISALLOW_COPY(InFlightGuard);
  /// True when the guard released the last reference; the caller must then
  /// call SchedulerImpl::MaybeReap. Because the completion reference is
  /// dropped only after `completed` is set, reaching zero implies the query
  /// completed — no second load of the (possibly freed) runtime is needed.
  bool ReleaseNeedsReap() {
    return q_->in_flight.fetch_sub(1, std::memory_order_acq_rel) == 1;
  }

 private:
  QueryRuntime* q_;
};

}  // namespace

// ---------------------------------------------------------------------------
// NodeState: dataflow event handling
// ---------------------------------------------------------------------------

void NodeState::OnPage(int slot, PendingPage p) {
  {
    std::lock_guard<std::mutex> lock(mu);
    if (!launched) {
      // Relation granularity: the instruction is not yet enabled; operands
      // accumulate until every input relation is complete (Section 3.1).
      buffered[static_cast<size_t>(slot)].push_back(std::move(p));
      return;
    }
  }
  DispatchStream(slot, std::move(p));
}

void NodeState::DispatchStream(int slot, PendingPage p) {
  impl->RecordTrace(obs::TraceEventKind::kPacketEnqueued, query, node->id,
                    slot,
                    static_cast<uint64_t>(p.page->payload_bytes()), nullptr);
  if (node->op == PlanOp::kJoin && slot == 1) {
    // Inner page: make it visible, then wake every parked outer task.
    std::vector<OuterWork> wake;
    {
      std::lock_guard<std::mutex> lock(mu);
      inner_pages.push_back(std::move(p));
      wake.swap(parked);
      pending += wake.size();
    }
    for (auto& w : wake) {
      impl->DispatchPacket(query, [this, w = std::move(w)]() mutable {
        RunJoinOuter(std::move(w));
      });
    }
    return;
  }
  if (node->op == PlanOp::kJoin && slot == 0) {
    OuterWork w;
    w.outer = std::move(p);
    {
      std::lock_guard<std::mutex> lock(mu);
      ++outer_seen;
      ++pending;
      ++pending_slot[0];
    }
    impl->DispatchPacket(query, [this, w = std::move(w)]() mutable {
      RunJoinOuter(std::move(w));
    });
    return;
  }
  if (node->op == PlanOp::kDifference && slot == 0) {
    // Left pages must wait for the right side to finish (set difference is
    // a barrier on its subtrahend).
    std::lock_guard<std::mutex> lock(mu);
    if (!RightSideDoneLocked() || !left_released) {
      left_buffer.push_back(std::move(p));
      return;
    }
    ++pending;
    ++pending_slot[0];
    PendingPage moved = std::move(p);
    impl->DispatchPacket(
        query, [this, moved]() mutable { RunUnaryTask(0, std::move(moved)); });
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    ++pending;
    ++pending_slot[static_cast<size_t>(slot)];
  }
  PendingPage moved = std::move(p);
  impl->DispatchPacket(query, [this, slot, moved]() mutable {
    RunUnaryTask(slot, std::move(moved));
  });
}

void NodeState::OnClose(int slot) {
  bool replay = false;
  std::vector<std::function<void()>> replay_tasks;
  std::vector<OuterWork> wake;
  {
    std::lock_guard<std::mutex> lock(mu);
    input_closed[static_cast<size_t>(slot)] = true;
    if (!launched) {
      bool all = true;
      for (bool c : input_closed) all = all && c;
      if (all) {
        launched = true;
        replay = true;
        LaunchRelationReplayLocked(&replay_tasks);
      }
    } else if (node->op == PlanOp::kJoin && slot == 1) {
      // Inner relation complete: parked outers can now finish.
      wake.swap(parked);
      pending += wake.size();
    }
  }
  if (replay) {
    for (auto& t : replay_tasks) impl->DispatchPacket(query, std::move(t));
  }
  for (auto& w : wake) {
    impl->DispatchPacket(query, [this, w = std::move(w)]() mutable {
      RunJoinOuter(std::move(w));
    });
  }
  if (node->op == PlanOp::kDifference && slot == 1) {
    ReleaseDifferenceLeftIfReady();
  }
  TryFinalize();
}

void NodeState::LaunchRelationReplayLocked(
    std::vector<std::function<void()>>* tasks) {
  // All inputs are complete; generate the instruction's tasks. Inner join
  // pages become visible first so outer tasks complete in one pass.
  if (node->op == PlanOp::kJoin) {
    for (auto& p : buffered[1]) inner_pages.push_back(std::move(p));
    buffered[1].clear();
    for (auto& p : buffered[0]) {
      OuterWork w;
      w.outer = std::move(p);
      ++outer_seen;
      ++pending;
      tasks->push_back([this, w = std::move(w)]() mutable {
        RunJoinOuter(std::move(w));
      });
    }
    buffered[0].clear();
    return;
  }
  // Difference: replay the right side as tasks; the left side stays in
  // left_buffer until the right tasks retire.
  if (node->op == PlanOp::kDifference) {
    for (auto& p : buffered[1]) {
      ++pending;
      ++pending_slot[1];
      PendingPage moved = std::move(p);
      tasks->push_back(
          [this, moved]() mutable { RunUnaryTask(1, std::move(moved)); });
    }
    buffered[1].clear();
    for (auto& p : buffered[0]) left_buffer.push_back(std::move(p));
    buffered[0].clear();
    return;
  }
  for (int slot = 0; slot < num_inputs; ++slot) {
    for (auto& p : buffered[static_cast<size_t>(slot)]) {
      ++pending;
      ++pending_slot[static_cast<size_t>(slot)];
      PendingPage moved = std::move(p);
      tasks->push_back([this, slot, moved]() mutable {
        RunUnaryTask(slot, std::move(moved));
      });
    }
    buffered[static_cast<size_t>(slot)].clear();
  }
}

void NodeState::ReleaseDifferenceLeftIfReady() {
  std::vector<PendingPage> release;
  {
    std::lock_guard<std::mutex> lock(mu);
    if (left_released) return;
    if (!RightSideDoneLocked()) return;
    left_released = true;
    release.swap(left_buffer);
    pending += release.size();
    pending_slot[0] += release.size();
  }
  for (auto& p : release) {
    PendingPage moved = std::move(p);
    impl->DispatchPacket(
        query, [this, moved]() mutable { RunUnaryTask(0, std::move(moved)); });
  }
}

// ---------------------------------------------------------------------------
// NodeState: task bodies
// ---------------------------------------------------------------------------

void NodeState::RunUnaryTask(int slot, PendingPage p) {
  EngineCounters& ctr = query->counters;
  ctr.tasks_executed.fetch_add(1, std::memory_order_relaxed);
  impl->RecordTrace(obs::TraceEventKind::kTaskClaimed, query, node->id, slot,
                    0, nullptr);
  if (!query->failed.load(std::memory_order_relaxed)) {
    // Fetch through the hierarchy: this is the operand delivery that the
    // arbitration path carries in the paper's model. Pages on fused edges
    // arrive live — no fetch, and no packet/arbitration traffic (that is
    // the saving the engine.pipeline.* counters record instead).
    PagePtr operand;
    if (p.direct) {
      operand = p.page;
    } else {
      auto fetched = impl->buffer()->Fetch(p.id);
      if (!fetched.ok()) {
        query->Fail(fetched.status().WithContext("operand fetch"));
      } else {
        operand = *fetched;
      }
    }
    if (operand != nullptr) {
      const Page& page = *operand;
      if (!p.direct) {
        ctr.packets.fetch_add(1, std::memory_order_relaxed);
        ctr.arbitration_bytes.fetch_add(
            static_cast<uint64_t>(page.payload_bytes()),
            std::memory_order_relaxed);
        ctr.overhead_bytes.fetch_add(
            static_cast<uint64_t>(impl->opts().packet_overhead_bytes),
            std::memory_order_relaxed);
      }
      impl->RecordTrace(obs::TraceEventKind::kPacketDelivered, query,
                        node->id, slot,
                        static_cast<uint64_t>(page.payload_bytes()),
                        p.direct ? "fused-direct" : nullptr);

      EdgeSink sink(out.get());
      Status s = Status::OK();
      const Schema& in_schema = node->num_children() > 0
                                    ? node->child(slot).output_schema
                                    : node->output_schema;
      if (fused.has_value()) {
        // Unary-chain collapse: one pass over the raw input page runs
        // every absorbed step plus this node's own operation, emitting
        // straight into the output edge. The absorbed producers' pages
        // never exist (one elision per absorbed edge per input page).
        ctr.pipeline_fused_pages.fetch_add(1, std::memory_order_relaxed);
        ctr.pipeline_pages_elided.fetch_add(
            static_cast<uint64_t>(fused_chain_len),
            std::memory_order_relaxed);
        s = RunFusedPipeline(*fused, page, &sink, &ctr.kernel);
      } else {
        switch (node->op) {
        case PlanOp::kRestrict:
          if (compiled_pred.has_value()) {
            s = RestrictPage(*compiled_pred, page, &sink, &ctr.kernel);
          } else {
            ctr.kernel.interpreted_pages.fetch_add(1,
                                                   std::memory_order_relaxed);
            s = RestrictPage(in_schema, *node->predicate, page, &sink);
          }
          break;
        case PlanOp::kProject: {
          if (!node->dedup) {
            s = ProjectPage(in_schema, project_indices, page, &sink);
            break;
          }
          // Parallel duplicate elimination: hash-partitioned shards so
          // concurrent tasks only contend on colliding partitions. One
          // projection buffer serves the whole page.
          std::string projected;
          for (int i = 0; i < page.num_tuples() && s.ok(); ++i) {
            ProjectTupleInto(in_schema, page.tuple(i), project_indices,
                             &projected);
            DedupShard& shard = *dedup_shards[static_cast<size_t>(
                DedupPartition(Slice(projected),
                               static_cast<int>(dedup_shards.size())))];
            bool fresh;
            {
              std::lock_guard<std::mutex> lock(shard.mu);
              fresh = shard.set.Insert(Slice(projected));
            }
            if (fresh) s = sink.Emit(Slice(projected));
          }
          break;
        }
        case PlanOp::kUnion: {
          if (node->bag_semantics) {
            s = CopyPage(page, &sink);
            break;
          }
          for (int i = 0; i < page.num_tuples() && s.ok(); ++i) {
            bool fresh;
            {
              std::lock_guard<std::mutex> lock(union_mu);
              fresh = union_seen.Insert(page.tuple(i));
            }
            if (fresh) s = sink.Emit(page.tuple(i));
          }
          break;
        }
        case PlanOp::kDifference: {
          std::lock_guard<std::mutex> lock(diff_mu);
          if (slot == 1) {
            diff.ConsumeRight(page);
          } else {
            s = diff.ConsumeLeft(page, &sink);
          }
          break;
        }
        case PlanOp::kAggregate: {
          std::lock_guard<std::mutex> lock(agg_mu);
          s = aggregator->Consume(page);
          break;
        }
        case PlanOp::kAppend:
          s = target_file->AppendPage(page);
          break;
        default:
          s = Status::Internal("unary task on non-unary node");
        }
      }
      if (!s.ok()) query->Fail(s.WithContext("operator task"));
    }
  }
  impl->RecordTrace(obs::TraceEventKind::kTaskExecuted, query, node->id, slot,
                    0, nullptr);
  bool was_right_diff = node->op == PlanOp::kDifference && slot == 1;
  {
    std::lock_guard<std::mutex> lock(mu);
    --pending;
    --pending_slot[static_cast<size_t>(slot)];
  }
  if (was_right_diff) ReleaseDifferenceLeftIfReady();
  TryFinalize();
}

void NodeState::RunJoinOuter(OuterWork w) {
  EngineCounters& ctr = query->counters;
  ctr.tasks_executed.fetch_add(1, std::memory_order_relaxed);
  impl->RecordTrace(obs::TraceEventKind::kTaskClaimed, query, node->id, 0, 0,
                    w.first ? "join-outer" : "join-resume");
  const bool failed = query->failed.load(std::memory_order_relaxed);

  PagePtr outer_page;
  if (!failed) {
    if (w.outer.direct) {
      // Fused outer edge: the live page skips the fetch and its traffic.
      outer_page = w.outer.page;
    } else {
      auto fetched = impl->buffer()->Fetch(w.outer.id);
      if (!fetched.ok()) {
        query->Fail(fetched.status().WithContext("join outer fetch"));
      } else {
        outer_page = *fetched;
        if (w.first) {
          ctr.packets.fetch_add(1, std::memory_order_relaxed);
          ctr.arbitration_bytes.fetch_add(
              static_cast<uint64_t>(outer_page->payload_bytes()),
              std::memory_order_relaxed);
          ctr.overhead_bytes.fetch_add(
              static_cast<uint64_t>(impl->opts().packet_overhead_bytes),
              std::memory_order_relaxed);
        }
      }
    }
  }
  w.first = false;

  const Schema& outer_schema = node->child(0).output_schema;
  const Schema& inner_schema = node->child(1).output_schema;

  for (;;) {
    std::vector<PendingPage> batch;
    {
      std::lock_guard<std::mutex> lock(mu);
      for (size_t i = w.cursor; i < inner_pages.size(); ++i) {
        batch.push_back(inner_pages[i]);
      }
    }
    if (batch.empty()) {
      std::lock_guard<std::mutex> lock(mu);
      // Re-check under the lock: a page may have arrived since the
      // snapshot. inner_pages only grows, so cursor comparison is safe.
      if (w.cursor < inner_pages.size()) continue;
      if (input_closed[1] && launched) {
        ++outer_done;
        --pending;
        break;
      }
      // Wait for more inner pages: park this outer ("scan its IRC vector
      // and request the pages it missed", Section 4.2).
      parked.push_back(std::move(w));
      --pending;
      // Finalization cannot trigger here (inner not closed), so return.
      return;
    }
    if (!failed && outer_page != nullptr &&
        !query->failed.load(std::memory_order_relaxed)) {
      EdgeSink sink(out.get());
      JoinScratch scratch;  // Reused across every inner page of this task.
      for (const PendingPage& inner : batch) {
        PagePtr inner_page;
        if (inner.direct) {
          // Fused inner edge: every broadcast re-delivery of this page is
          // a fetch (and a packet) that never happens.
          inner_page = inner.page;
        } else {
          auto inner_fetched = impl->buffer()->Fetch(inner.id);
          if (!inner_fetched.ok()) {
            query->Fail(
                inner_fetched.status().WithContext("join inner fetch"));
            break;
          }
          inner_page = *inner_fetched;
          // Each inner-page delivery is one broadcast packet (Section 4.2).
          ctr.packets.fetch_add(1, std::memory_order_relaxed);
          ctr.arbitration_bytes.fetch_add(
              static_cast<uint64_t>(inner_page->payload_bytes()),
              std::memory_order_relaxed);
          ctr.overhead_bytes.fetch_add(
              static_cast<uint64_t>(impl->opts().packet_overhead_bytes),
              std::memory_order_relaxed);
          impl->RecordTrace(obs::TraceEventKind::kPacketDelivered, query,
                            node->id, 1,
                            static_cast<uint64_t>(inner_page->payload_bytes()),
                            "broadcast");
        }
        Status s;
        if (compiled_join.has_value()) {
          s = JoinPages(*compiled_join, *outer_page, *inner_page, &scratch,
                        &sink, &ctr.kernel);
        } else {
          ctr.kernel.interpreted_pages.fetch_add(1, std::memory_order_relaxed);
          ctr.kernel.nested_joins.fetch_add(1, std::memory_order_relaxed);
          s = JoinPages(outer_schema, inner_schema, *node->predicate,
                        *outer_page, *inner_page, &sink);
        }
        if (!s.ok()) {
          query->Fail(s.WithContext("join task"));
          break;
        }
      }
    }
    w.cursor += batch.size();
  }
  impl->RecordTrace(obs::TraceEventKind::kTaskExecuted, query, node->id, 0, 0,
                    "join-outer");
  TryFinalize();
}

// ---------------------------------------------------------------------------
// NodeState: completion
// ---------------------------------------------------------------------------

void NodeState::TryFinalize() {
  {
    std::lock_guard<std::mutex> lock(mu);
    if (finalize_claimed) return;
    if (pending != 0) return;
    if (num_inputs == 0) {
      // Leaf (scan or delete): done when the driver retires.
      if (!source_done) return;
    } else {
      if (!launched) return;
      for (bool c : input_closed) {
        if (!c) return;
      }
      if (node->op == PlanOp::kJoin) {
        if (outer_seen != outer_done || !parked.empty()) return;
      }
      if (node->op == PlanOp::kDifference && !left_released) return;
    }
    finalize_claimed = true;
  }
  RunFinalizeAndClose();
}

void NodeState::RunFinalizeAndClose() {
  if (!query->failed.load(std::memory_order_relaxed)) {
    Status s = Status::OK();
    switch (node->op) {
      case PlanOp::kAggregate: {
        EdgeSink sink(out.get());
        std::lock_guard<std::mutex> lock(agg_mu);
        s = aggregator->Finish(&sink);
        break;
      }
      case PlanOp::kAppend: {
        s = impl->storage()->SyncStats(target_file->relation());
        break;
      }
      default:
        break;
    }
    if (!s.ok()) query->Fail(s.WithContext("finalize"));
  }
  Status close = out->CloseProducer();
  if (!close.ok()) query->Fail(close);
}

// ---------------------------------------------------------------------------
// SchedulerImpl: drivers
// ---------------------------------------------------------------------------

void SchedulerImpl::ScanStep(NodeState* node,
                             std::shared_ptr<std::vector<PageId>> ids,
                             size_t idx) {
  node->query->counters.tasks_executed.fetch_add(1, std::memory_order_relaxed);
  if (node->query->failed.load(std::memory_order_relaxed)) {
    idx = ids->size();  // Stop producing.
  }
  if (idx >= ids->size()) {
    {
      std::lock_guard<std::mutex> lock(node->mu);
      node->source_done = true;
      --node->pending;
    }
    node->TryFinalize();
    return;
  }
  // Memory-cell throttle: sources yield while the packet backlog exceeds
  // cells-per-processor * processors (the paper's "two memory cells for
  // each processor" resource bound).
  if (ThrottleExceeded()) {
    Dispatch(node->query, [this, node, ids, idx] { ScanStep(node, ids, idx); });
    std::this_thread::yield();
    return;
  }
  if (node->pushdown_pred.has_value()) {
    // Pushdown path: the compiled restrict runs where the page lives;
    // survivors repack into unit pages on the output edge, so the
    // consumer's operand fetches (arbitration traffic) shrink with the
    // selectivity.
    CompiledFilter filter(&*node->pushdown_pred);
    EdgePushdownSink sink(node->out.get());
    PushdownCounters local;
    Status s = buffer_.ReadFiltered((*ids)[idx], filter, &sink, &local);
    node->query->counters.pushdown.Add(local);
    RecordTrace(obs::TraceEventKind::kTaskExecuted, node->query,
                node->node->id, 0, local.tuples_out, "scan-pushdown");
    if (!s.ok()) node->query->Fail(s.WithContext("scan pushdown"));
  } else {
    auto page = buffer_.Fetch((*ids)[idx]);
    if (!page.ok()) {
      node->query->Fail(page.status().WithContext("scan fetch"));
    } else {
      RecordTrace(obs::TraceEventKind::kTaskExecuted, node->query,
                  node->node->id, 0,
                  static_cast<uint64_t>((*page)->payload_bytes()), "scan-step");
      Status s = node->out->EmitPage(*page);
      if (!s.ok()) node->query->Fail(s.WithContext("scan emit"));
    }
  }
  Dispatch(node->query,
           [this, node, ids, idx] { ScanStep(node, ids, idx + 1); });
}

void SchedulerImpl::DeleteDriver(NodeState* node) {
  QueryRuntime* q = node->query;
  q->counters.tasks_executed.fetch_add(1, std::memory_order_relaxed);
  if (!q->failed.load(std::memory_order_relaxed)) {
    const Schema& schema = node->node->output_schema;
    const Expr* pred = node->node->predicate.get();
    const CompiledPredicate* compiled =
        node->compiled_pred.has_value() ? &*node->compiled_pred : nullptr;
    Status pred_error = Status::OK();
    auto matcher = [&](const TupleView& t) {
      if (compiled != nullptr) return compiled->Matches(t.raw().data(), nullptr);
      auto r = pred->EvalBool(t, nullptr);
      if (!r.ok()) {
        if (pred_error.ok()) pred_error = r.status();
        return false;
      }
      return *r;
    };
    const uint64_t before_bytes =
        node->target_file->tuple_count() *
        static_cast<uint64_t>(schema.tuple_width());
    auto removed = node->target_file->DeleteWhere(matcher);
    q->counters.packets.fetch_add(1, std::memory_order_relaxed);
    q->counters.arbitration_bytes.fetch_add(before_bytes,
                                            std::memory_order_relaxed);
    q->counters.overhead_bytes.fetch_add(
        static_cast<uint64_t>(opts().packet_overhead_bytes),
        std::memory_order_relaxed);
    RecordTrace(obs::TraceEventKind::kTaskExecuted, q, node->node->id, 0,
                before_bytes, "delete");
    if (!removed.ok()) {
      q->Fail(removed.status().WithContext("delete"));
    } else if (!pred_error.ok()) {
      q->Fail(pred_error.WithContext("delete predicate"));
    } else {
      Status s = storage_->SyncStats(node->target_file->relation());
      if (!s.ok()) q->Fail(s);
    }
  }
  {
    std::lock_guard<std::mutex> lock(node->mu);
    node->source_done = true;
    --node->pending;
  }
  node->TryFinalize();
}

// ---------------------------------------------------------------------------
// SchedulerImpl: query preparation and wiring
// ---------------------------------------------------------------------------

StatusOr<std::unique_ptr<QueryRuntime>> SchedulerImpl::Prepare(
    const PlanNode& plan, size_t batch_index) {
  auto q = std::make_unique<QueryRuntime>();
  q->batch_index = batch_index;
  q->plan = plan.Clone();
  Analyzer analyzer(&storage_->catalog());
  DFDB_ASSIGN_OR_RETURN(q->analysis, analyzer.Resolve(q->plan.get()));
  NodeState* root = BuildNode(q->plan.get(), nullptr, 0, q.get(), nullptr);
  if (root == nullptr) {
    return Status::Internal("failed to build node graph");
  }
  q->root = root;
  q->result.set_schema(q->plan->output_schema);
  return q;
}

bool SchedulerImpl::EdgeFused(const PlanNode& producer,
                              const PlanNode& consumer, QueryRuntime* q,
                              bool count_fallback) {
  if (producer.op == PlanOp::kScan) return false;
  switch (opts().pipeline) {
    case PipelinePolicy::kForceMaterialize:
      return false;
    case PipelinePolicy::kForceFuse:
      return PipelineEdgeSafe(producer, consumer);
    case PipelinePolicy::kHonorPlan:
      if (!producer.pipeline_fused) return false;
      if (!PipelineEdgeSafe(producer, consumer)) {
        // The plan asked for fusion the engine cannot prove safe (e.g. a
        // hand-marked plan): fall back to materialization.
        if (count_fallback) {
          q->counters.pipeline_runtime_fallbacks.fetch_add(
              1, std::memory_order_relaxed);
        }
        return false;
      }
      return true;
  }
  return false;
}

Status SchedulerImpl::BuildFusedChain(
    NodeState* ns, const std::vector<const PlanNode*>& chain) {
  const PlanNode* n = ns->node;
  ns->fused.emplace(chain.back()->child(0).output_schema.tuple_width());
  // Deepest absorbed producer first, then up the chain, then this node's
  // own operation as the final step.
  std::vector<const PlanNode*> steps(chain.rbegin(), chain.rend());
  steps.push_back(n);
  for (const PlanNode* a : steps) {
    const Schema& in = a->child(0).output_schema;
    if (a->op == PlanOp::kRestrict) {
      DFDB_ASSIGN_OR_RETURN(CompiledPredicate pred,
                            CompiledPredicate::Compile(*a->predicate, in));
      ns->fused->AddFilter(std::move(pred));
    } else if (a->op == PlanOp::kProject) {
      std::vector<int> indices;
      for (const std::string& name : a->columns) {
        DFDB_ASSIGN_OR_RETURN(int idx, in.ColumnIndex(name));
        indices.push_back(idx);
      }
      ns->fused->AddProject(in, indices);
    } else {
      return Status::Internal("unexpected op in fused chain");
    }
  }
  if (ns->fused->output_width() != n->output_schema.tuple_width()) {
    return Status::Internal("fused chain width mismatch");
  }
  ns->fused_chain_len = static_cast<int>(chain.size());
  return Status::OK();
}

NodeState* SchedulerImpl::BuildNode(const PlanNode* n, NodeState* parent,
                                    int slot, QueryRuntime* q,
                                    const PlanNode* plan_parent) {
  auto state = std::make_unique<NodeState>();
  NodeState* ns = state.get();
  ns->impl = this;
  ns->query = q;
  ns->node = n;
  ns->parent = parent;
  ns->parent_slot = slot;
  ns->num_inputs = n->num_children();
  ns->input_closed.assign(static_cast<size_t>(ns->num_inputs), false);
  ns->pending_slot.assign(static_cast<size_t>(std::max(ns->num_inputs, 1)), 0);
  ns->buffered.resize(static_cast<size_t>(ns->num_inputs));
  // Relation granularity defers interior instructions until their operands
  // complete; leaves are always immediately executable.
  ns->launched =
      opts().granularity != Granularity::kRelation || ns->num_inputs == 0;

  // Predicate compilation: once per query per node. A refusal (division,
  // CHAR/numeric mixing, ...) is not an error — the node interprets the
  // tree per tuple instead, preserving exact runtime-error semantics.
  if (n->predicate != nullptr) {
    if (n->op == PlanOp::kRestrict || n->op == PlanOp::kDelete) {
      const Schema& in =
          n->num_children() > 0 ? n->child(0).output_schema : n->output_schema;
      auto compiled = CompiledPredicate::Compile(*n->predicate, in);
      if (compiled.ok()) {
        ns->compiled_pred.emplace(*std::move(compiled));
      } else {
        q->counters.kernel.compile_fallbacks.fetch_add(
            1, std::memory_order_relaxed);
      }
    } else if (n->op == PlanOp::kJoin) {
      auto compiled = CompiledJoinPredicate::Compile(
          *n->predicate, n->child(0).output_schema, n->child(1).output_schema);
      if (compiled.ok()) {
        ns->compiled_join.emplace(*std::move(compiled));
      } else {
        q->counters.kernel.compile_fallbacks.fetch_add(
            1, std::memory_order_relaxed);
      }
    }
  }

  // Near-data pushdown: a marked scan compiles its consuming restrict's
  // predicate against the scan schema and reads through the buffer
  // hierarchy's filtered path. plan_parent is the scan's direct plan
  // consumer in both the plain and fused-absorbed wirings, so the shape
  // check holds whenever the optimizer marked a restrict-over-scan. The
  // restrict re-applies the same program to the survivors — compiled
  // predicates are infallible per tuple, so re-filtering is idempotent.
  if (n->op == PlanOp::kScan && n->pushdown &&
      opts().pushdown == PushdownPolicy::kHonorPlan) {
    if (plan_parent != nullptr && plan_parent->op == PlanOp::kRestrict &&
        plan_parent->predicate != nullptr) {
      auto compiled =
          CompiledPredicate::Compile(*plan_parent->predicate, n->output_schema);
      if (compiled.ok()) {
        ns->pushdown_pred.emplace(*std::move(compiled));
      } else {
        q->counters.pushdown.fallbacks.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      q->counters.pushdown.fallbacks.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Op-specific static setup.
  Status setup = Status::OK();
  switch (n->op) {
    case PlanOp::kProject: {
      const Schema& in = n->child(0).output_schema;
      for (const std::string& name : n->columns) {
        auto idx = in.ColumnIndex(name);
        if (!idx.ok()) {
          setup = idx.status();
          break;
        }
        ns->project_indices.push_back(*idx);
      }
      if (n->dedup) {
        const int shards = std::max(1, opts().dedup_partitions);
        for (int i = 0; i < shards; ++i) {
          ns->dedup_shards.push_back(std::make_unique<NodeState::DedupShard>());
        }
      }
      break;
    }
    case PlanOp::kAggregate: {
      auto agg = Aggregator::Create(n->child(0).output_schema, n->output_schema,
                                    n->columns, n->aggregates);
      if (!agg.ok()) {
        setup = agg.status();
      } else {
        ns->aggregator.emplace(*std::move(agg));
      }
      break;
    }
    case PlanOp::kAppend:
    case PlanOp::kDelete: {
      auto file = storage_->GetHeapFile(n->relation);
      if (!file.ok()) {
        setup = file.status();
      } else {
        ns->target_file = *file;
      }
      break;
    }
    default:
      break;
  }
  if (!setup.ok()) {
    q->Fail(setup.WithContext("node setup"));
  }

  // Per-edge pipeline decision for the edge to this node's plan consumer.
  // A fused edge whose consumer could have absorbed this node never gets
  // here (the consumer skipped BuildNode for it), so a fused edge at this
  // point delivers `direct`: its pages keep their Edge packing (join output
  // order depends on operand page boundaries) but skip the buffer-hierarchy
  // round trip, and the consumer uses the live pointer without a fetch.
  bool direct = false;
  if (plan_parent != nullptr && n->op != PlanOp::kScan) {
    if (EdgeFused(*n, *plan_parent, q)) {
      direct = true;
      q->counters.pipeline_fused_edges.fetch_add(1, std::memory_order_relaxed);
    } else {
      q->counters.pipeline_materialized_edges.fetch_add(
          1, std::memory_order_relaxed);
    }
  }

  // Output edge: unit is the configured page size, or one tuple under
  // tuple granularity.
  const int tuple_width = std::max(1, n->output_schema.tuple_width());
  const int unit = opts().granularity == Granularity::kTuple
                       ? tuple_width
                       : std::max(opts().page_bytes, tuple_width);
  const RelationId pseudo = 0xD0000000u + static_cast<RelationId>(n->id);
  const bool count_distribution = n->op != PlanOp::kScan;
  const int node_id = n->id;
  if (parent == nullptr) {
    // Root: deliver into the query result.
    ns->out = std::make_unique<Edge>(
        pseudo, tuple_width, unit,
        [this, q, node_id, count_distribution](PagePtr page) {
          if (count_distribution) {
            q->counters.distribution_bytes.fetch_add(
                static_cast<uint64_t>(page->payload_bytes()),
                std::memory_order_relaxed);
          }
          q->counters.pages_produced.fetch_add(1, std::memory_order_relaxed);
          q->counters.tuples_produced.fetch_add(
              static_cast<uint64_t>(page->num_tuples()),
              std::memory_order_relaxed);
          RecordTrace(obs::TraceEventKind::kPageProduced, q, node_id, -1,
                      static_cast<uint64_t>(page->payload_bytes()), "root");
          std::lock_guard<std::mutex> lock(q->result_mu);
          q->result.AddPage(std::move(page));
        },
        [this, q] { OnQueryDone(q); });
  } else {
    ns->out = std::make_unique<Edge>(
        pseudo, tuple_width, unit,
        [this, q, node_id, parent, slot, count_distribution,
         direct](PagePtr page) {
          if (count_distribution && !direct) {
            q->counters.distribution_bytes.fetch_add(
                static_cast<uint64_t>(page->payload_bytes()),
                std::memory_order_relaxed);
          }
          q->counters.pages_produced.fetch_add(1, std::memory_order_relaxed);
          q->counters.tuples_produced.fetch_add(
              static_cast<uint64_t>(page->num_tuples()),
              std::memory_order_relaxed);
          RecordTrace(obs::TraceEventKind::kPageProduced, q, node_id, -1,
                      static_cast<uint64_t>(page->payload_bytes()),
                      direct ? "fused-direct" : nullptr);
          if (direct) {
            // Fused edge: the page is handed to the consumer live — the
            // PutNew/Fetch round trip (and its distribution/arbitration
            // traffic) is elided.
            q->counters.pipeline_pages_elided.fetch_add(
                1, std::memory_order_relaxed);
            parent->OnPage(slot, PendingPage{std::move(page), PageId{}, true});
            return;
          }
          const PageId id = buffer_.PutNew(page);
          q->RecordIntermediate(id);
          parent->OnPage(slot, PendingPage{std::move(page), id});
        },
        [parent, slot] { parent->OnClose(slot); });
  }

  // Children are wired after this node exists so their edges can reference
  // it. A fusable unary consumer first absorbs the chain of fused
  // producers below it: those nodes get no NodeState — the chain compiles
  // into ns->fused and the chain's input wires directly to this node.
  const bool absorbs =
      (n->op == PlanOp::kRestrict && ns->compiled_pred.has_value()) ||
      (n->op == PlanOp::kProject && !n->dedup);
  for (int i = 0; i < n->num_children(); ++i) {
    const PlanNode* child = &n->child(i);
    if (i == 0 && absorbs) {
      std::vector<const PlanNode*> chain;  // Nearest producer first.
      const PlanNode* consumer = n;
      const PlanNode* cur = child;
      while ((cur->op == PlanOp::kRestrict || cur->op == PlanOp::kProject) &&
             EdgeFused(*cur, *consumer, q, /*count_fallback=*/false)) {
        chain.push_back(cur);
        consumer = cur;
        cur = &cur->child(0);
      }
      if (!chain.empty()) {
        Status fs = BuildFusedChain(ns, chain);
        if (fs.ok()) {
          q->counters.pipeline_fused_edges.fetch_add(
              chain.size(), std::memory_order_relaxed);
          BuildNode(cur, ns, i, q, /*plan_parent=*/chain.back());
          continue;
        }
        // Cannot happen when the safety conditions held (same deterministic
        // compile); the chain is wired normally below (its edges then run
        // direct rather than collapsed).
        ns->fused.reset();
        ns->fused_chain_len = 0;
        q->counters.pipeline_runtime_fallbacks.fetch_add(
            1, std::memory_order_relaxed);
      }
    }
    BuildNode(child, ns, i, q, n);
  }

  q->nodes.push_back(std::move(state));
  return ns;
}

void SchedulerImpl::LaunchQuery(QueryRuntime* q) {
  // Start every source driver. Leaves are "immediately executable"
  // (Section 3.1) under every granularity. The drivers are enqueued as one
  // atomic batch so a single-worker schedule stays deterministic even while
  // the pool is already running.
  std::vector<Task> drivers;
  for (auto& node : q->nodes) {
    NodeState* ns = node.get();
    if (ns->node->op == PlanOp::kScan) {
      std::shared_ptr<std::vector<PageId>> ids;
      uint64_t view_commit_ts = 0;
      bool allow_gridfile = false;
      if (q->snapshot.valid()) {
        // Snapshot mode: scan the immutable version this query's snapshot
        // resolves to. The pages are sealed and committed, so no flush and
        // no coordination with concurrent writers is needed.
        auto view = q->snapshot.View(ns->node->relation);
        if (!view.ok()) {
          q->Fail(view.status().WithContext("snapshot view"));
          std::lock_guard<std::mutex> lock(ns->mu);
          ns->source_done = true;
          continue;
        }
        view_commit_ts = view->commit_ts;
        allow_gridfile = true;
        ids = std::make_shared<std::vector<PageId>>(std::move(view->pages));
      } else {
        // Barrier mode: admission already excluded writers of this
        // relation, so the live head is stable for the query's duration.
        // Grid-file probes need a version timestamp to cache against, so
        // only zone maps apply here.
        auto file = storage_->GetHeapFile(ns->node->relation);
        if (!file.ok()) {
          q->Fail(file.status());
          std::lock_guard<std::mutex> lock(ns->mu);
          ns->source_done = true;
          continue;
        }
        Status flushed = (*file)->Flush();
        if (!flushed.ok()) q->Fail(flushed);
        ids = std::make_shared<std::vector<PageId>>((*file)->PageIds());
      }
      if (opts().index == IndexPolicy::kHonorPlan &&
          ns->node->access_path != ScanAccessPath::kFullScan) {
        IndexPruneCounters local;
        *ids = PruneScanPages(storage_, *ns->node, *ids, view_commit_ts,
                              allow_gridfile, &local);
        q->counters.index.Add(local);
      }
      {
        std::lock_guard<std::mutex> lock(ns->mu);
        ++ns->pending;
      }
      drivers.push_back(Task{q, [this, ns, ids] { ScanStep(ns, ids, 0); }});
    } else if (ns->node->op == PlanOp::kDelete) {
      {
        std::lock_guard<std::mutex> lock(ns->mu);
        ++ns->pending;
      }
      drivers.push_back(Task{q, [this, ns] { DeleteDriver(ns); }});
    }
  }
  queue_.PushAll(std::move(drivers));
  // Degenerate plans whose leaves failed setup still need to terminate.
  for (auto& node : q->nodes) {
    node->TryFinalize();
  }
}

// ---------------------------------------------------------------------------
// SchedulerImpl: admission, completion, reaping
// ---------------------------------------------------------------------------

void SchedulerImpl::StampSnapshotLocked(QueryRuntime* q) {
  // Publish any committed-state debt first: a relation in this query's
  // read/write sets may carry uncommitted head mutations made outside the
  // scheduler (direct HeapFile appends by the host program). Those belong
  // to no active writer, so this query is entitled to see them — commit
  // them now so the captured snapshot includes them. A relation owned by a
  // still-running writer keeps its uncommitted head private.
  auto publish = [&](const std::set<std::string>& rels) {
    for (const std::string& rel : rels) {
      if (writing_relations_.count(rel) > 0) continue;
      // No-op when clean; a failure here means the relation vanished since
      // analysis, which the scan driver reports properly.
      (void)storage_->CommitRelation(rel);
    }
  };
  publish(q->analysis.read_set);
  publish(q->analysis.write_set);
  q->snapshot = storage_->CaptureSnapshot();
  for (const std::string& rel : q->analysis.write_set) {
    writing_relations_[rel] = q->qid;
  }
}

StatusOr<QueryHandle> SchedulerImpl::Submit(const PlanNode& plan) {
  uint64_t qid = 0;
  size_t batch_index = 0;
  {
    std::lock_guard<std::mutex> lock(admit_mu_);
    if (shutting_down_) {
      return Status::Unavailable("scheduler is shut down");
    }
    qid = next_qid_++;
    batch_index = next_batch_index_++;
  }
  DFDB_ASSIGN_OR_RETURN(std::unique_ptr<QueryRuntime> owned,
                        Prepare(plan, batch_index));
  QueryRuntime* q = owned.get();
  q->qid = qid;
  q->submitted_at = std::chrono::steady_clock::now();
  q->state = std::make_shared<QueryState>();
  q->state->qid = qid;
  QueryHandle handle(q->state);

  bool admitted = false;
  {
    std::lock_guard<std::mutex> lock(admit_mu_);
    if (shutting_down_) {
      return Status::Unavailable("scheduler is shut down");
    }
    runtimes_[qid] = std::move(owned);
    ++totals_.submitted;
    if (snapshot_mode() && q->analysis.write_set.empty()) {
      // Read-only query: it executes against an immutable snapshot, so it
      // cannot conflict with anything. Admit around the MC queue entirely —
      // it never queues and never skips.
      q->bypassed_admission = true;
      admitted = true;
    } else if (snapshot_mode()) {
      // Writer: its reads come from its snapshot, so the lock table only
      // arbitrates writer–writer conflicts.
      admitted = admission_.Submit(qid, /*read_set=*/{},
                                   q->analysis.write_set);
    } else {
      admitted = admission_.Submit(qid, q->analysis.read_set,
                                   q->analysis.write_set);
    }
    if (admitted) {
      ++totals_.admitted_immediately;
      ++active_queries_;
      if (snapshot_mode()) StampSnapshotLocked(q);
    } else {
      ++totals_.queued;
      q->was_queued = true;
    }
  }
  if (admitted) {
    InFlightGuard guard(q);
    LaunchQuery(q);
    if (guard.ReleaseNeedsReap()) MaybeReap(q);
  }
  return handle;
}

void SchedulerImpl::FulfillLocked(QueryRuntime* q) {
  // Per-query snapshot: this query's own work, timed from submission to
  // completion (including any MC queue wait). Pool-wide fault/buffer
  // counters stay zero here.
  ExecStats qs;
  qs.wall_seconds =
      std::chrono::duration<double>(q->completed_at - q->submitted_at).count();
  qs.tasks_executed = q->counters.tasks_executed.load();
  qs.packets = q->counters.packets.load();
  qs.arbitration_bytes = q->counters.arbitration_bytes.load();
  qs.distribution_bytes = q->counters.distribution_bytes.load();
  qs.overhead_bytes = q->counters.overhead_bytes.load();
  qs.pages_produced = q->counters.pages_produced.load();
  qs.tuples_produced = q->counters.tuples_produced.load();
  qs.pipeline_fused_edges = q->counters.pipeline_fused_edges.load();
  qs.pipeline_materialized_edges =
      q->counters.pipeline_materialized_edges.load();
  qs.pipeline_pages_elided = q->counters.pipeline_pages_elided.load();
  qs.pipeline_fused_pages = q->counters.pipeline_fused_pages.load();
  qs.pipeline_runtime_fallbacks =
      q->counters.pipeline_runtime_fallbacks.load();
  qs.kernel = q->counters.kernel.Snapshot();
  qs.index = q->counters.index.Snapshot();
  qs.pushdown = q->counters.pushdown.Snapshot();
  qs.sched_admitted = q->was_queued ? 0 : 1;
  qs.sched_queued = q->was_queued ? 1 : 0;
  qs.sched_requeues = q->failed_probes;
  qs.sched_queue_wait_ns = q->queue_wait_ns;
  qs.sched_skips = q->sched_skips;
  // Storage-wide MVCC stats observed at this query's completion.
  const MvccStats mv = MvccDelta();
  qs.mvcc_snapshots_open = mv.snapshots_open;
  qs.mvcc_snapshots_captured = mv.snapshots_captured;
  qs.mvcc_versions_live = mv.versions_live;
  qs.mvcc_pages_copied = mv.pages_copied;
  qs.mvcc_gc_reclaimed = mv.gc_reclaimed;
  qs.mvcc_commits = mv.commits;

  ++totals_.completed;
  totals_.queue_wait_ns += q->queue_wait_ns;
  totals_.work.tasks_executed += qs.tasks_executed;
  totals_.work.packets += qs.packets;
  totals_.work.arbitration_bytes += qs.arbitration_bytes;
  totals_.work.distribution_bytes += qs.distribution_bytes;
  totals_.work.overhead_bytes += qs.overhead_bytes;
  totals_.work.pages_produced += qs.pages_produced;
  totals_.work.tuples_produced += qs.tuples_produced;
  totals_.work.pipeline_fused_edges += qs.pipeline_fused_edges;
  totals_.work.pipeline_materialized_edges += qs.pipeline_materialized_edges;
  totals_.work.pipeline_pages_elided += qs.pipeline_pages_elided;
  totals_.work.pipeline_fused_pages += qs.pipeline_fused_pages;
  totals_.work.pipeline_runtime_fallbacks += qs.pipeline_runtime_fallbacks;
  totals_.work.kernel.compiled_pages += qs.kernel.compiled_pages;
  totals_.work.kernel.interpreted_pages += qs.kernel.interpreted_pages;
  totals_.work.kernel.compile_fallbacks += qs.kernel.compile_fallbacks;
  totals_.work.kernel.hash_joins += qs.kernel.hash_joins;
  totals_.work.kernel.nested_joins += qs.kernel.nested_joins;
  totals_.work.kernel.hash_build_collisions +=
      qs.kernel.hash_build_collisions;
  totals_.work.index += qs.index;
  totals_.work.pushdown += qs.pushdown;

  QueryState* state = q->state.get();
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->queue_wait_ns.store(q->queue_wait_ns, std::memory_order_relaxed);
    if (q->failed.load()) {
      std::lock_guard<std::mutex> err_lock(q->err_mu);
      state->status = q->error.WithContext(
          StrFormat("query %llu", static_cast<unsigned long long>(q->qid)));
    } else {
      std::lock_guard<std::mutex> result_lock(q->result_mu);
      q->result.set_stats(std::move(qs));
      state->result = std::move(q->result);
    }
    state->done = true;
  }
  state->cv.notify_all();
}

void SchedulerImpl::OnQueryDone(QueryRuntime* q) {
  q->completed_at = std::chrono::steady_clock::now();
  // Free intermediate pages (they have been consumed).
  {
    std::lock_guard<std::mutex> lock(q->interm_mu);
    for (PageId id : q->intermediates) {
      (void)buffer_.Discard(id);
    }
    q->intermediates.clear();
  }
  // Snapshot mode, writer epilogue: a failed writer's uncommitted head
  // mutations are rolled back to the last committed version; a successful
  // writer's are committed (usually a no-op — the execution paths publish
  // through SyncStats — but it guarantees the next admission's snapshot
  // sees this writer's effects). Safe outside admit_mu_: this query still
  // owns its write relations in writing_relations_, so no concurrent
  // admission will commit or publish them meanwhile.
  if (snapshot_mode() && !q->analysis.write_set.empty()) {
    const bool failed = q->failed.load(std::memory_order_relaxed);
    for (const std::string& rel : q->analysis.write_set) {
      if (failed) {
        (void)storage_->RollbackRelation(rel);
      } else {
        (void)storage_->CommitRelation(rel);
      }
    }
  }
  std::vector<QueryRuntime*> to_launch;
  {
    std::lock_guard<std::mutex> lock(admit_mu_);
    const auto now = std::chrono::steady_clock::now();
    for (const std::string& rel : q->analysis.write_set) {
      auto it = writing_relations_.find(rel);
      if (it != writing_relations_.end() && it->second == q->qid) {
        writing_relations_.erase(it);
      }
    }
    std::vector<AdmissionQueue::ReAdmitted> readmitted;
    // Bypassed readers hold no admission locks; probing the queue for them
    // would only inflate requeue-failure counts.
    if (!q->bypassed_admission) readmitted = admission_.Release(q->qid);
    for (const AdmissionQueue::ReAdmitted& adm : readmitted) {
      auto it = runtimes_.find(adm.qid);
      if (it == runtimes_.end()) continue;  // Cancelled meanwhile.
      QueryRuntime* cand = it->second.get();
      cand->failed_probes = adm.failed_probes;
      cand->sched_skips = adm.skips;
      cand->queue_wait_ns = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              now - cand->submitted_at)
              .count());
      ++active_queries_;
      if (snapshot_mode()) StampSnapshotLocked(cand);
      to_launch.push_back(cand);
    }
    --active_queries_;
    FulfillLocked(q);
    q->completed.store(true, std::memory_order_release);
    if (active_queries_ == 0) drain_cv_.notify_all();
  }
  for (QueryRuntime* cand : to_launch) {
    InFlightGuard guard(cand);
    LaunchQuery(cand);
    if (guard.ReleaseNeedsReap()) MaybeReap(cand);
  }
  // Drop the completion reference taken at construction. This is the last
  // access to `q` on this path: if the drop reaches zero the caller's frame
  // is the sole remaining owner (the worker executing this close callback
  // still holds its own reference, so zero is reached there or later).
  if (q->in_flight.fetch_sub(1, std::memory_order_acq_rel) == 1) MaybeReap(q);
}

void SchedulerImpl::MaybeReap(QueryRuntime* q) {
  // Only the frame whose in_flight decrement reached zero gets here, and
  // zero is unreachable before OnQueryDone drops the completion reference —
  // so the caller owns `q` exclusively and these loads cannot race.
  DFDB_CHECK(q->completed.load(std::memory_order_acquire));
  DFDB_CHECK(q->in_flight.load(std::memory_order_acquire) == 0);
  std::unique_ptr<QueryRuntime> doomed;
  {
    std::lock_guard<std::mutex> lock(admit_mu_);
    auto it = runtimes_.find(q->qid);
    if (it == runtimes_.end() || it->second.get() != q) return;
    doomed = std::move(it->second);
    runtimes_.erase(it);
  }
  // Node graph (and any retained operand pages) destroyed here, outside the
  // admission lock.
}

// ---------------------------------------------------------------------------
// SchedulerImpl: worker pool lifecycle
// ---------------------------------------------------------------------------

void SchedulerImpl::WorkerLoop(int worker_index) {
  const EngineFaultPlan& fp = opts().fault_plan;
  // Clamp so at least one worker survives to drain the queue.
  const int doomed_count =
      std::min(fp.abandon_workers, opts().num_processors - 1);
  const bool doomed = worker_index < doomed_count;
  uint64_t claimed = 0;
  for (;;) {
    auto task = queue_.Pop();
    if (!task.has_value()) return;
    if (doomed && ++claimed > fp.abandon_after_tasks) {
      // Fail-stop at a packet boundary: the claimed task has not run, so
      // handing it back re-executes it from scratch on a survivor and the
      // results are exactly those of a healthy run.
      counters_.faults_injected.fetch_add(1, std::memory_order_relaxed);
      counters_.workers_abandoned.fetch_add(1, std::memory_order_relaxed);
      RecordTrace(obs::TraceEventKind::kFaultInjected, nullptr, -1,
                  worker_index, 0, "worker-abandon");
      if (queue_.TryPush(std::move(*task))) {
        counters_.redispatched_tasks.fetch_add(1, std::memory_order_relaxed);
        RecordTrace(obs::TraceEventKind::kFaultRecovered, nullptr, -1,
                    worker_index, 0, "task-redispatched");
      }
      return;
    }
    const int busy = busy_workers_.fetch_add(1, std::memory_order_relaxed) + 1;
    int peak = peak_busy_workers_.load(std::memory_order_relaxed);
    while (busy > peak && !peak_busy_workers_.compare_exchange_weak(
                              peak, busy, std::memory_order_relaxed)) {
    }
    QueryRuntime* q = task->query;
    if (q != nullptr) q->in_flight.fetch_add(1, std::memory_order_acq_rel);
    task->fn();
    busy_workers_.fetch_sub(1, std::memory_order_relaxed);
    if (q != nullptr &&
        q->in_flight.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      MaybeReap(q);
    }
  }
}

void SchedulerImpl::Start() {
  std::lock_guard<std::mutex> lock(admit_mu_);
  if (started_ || shutting_down_) return;
  started_ = true;
  workers_.reserve(static_cast<size_t>(opts().num_processors));
  for (int i = 0; i < opts().num_processors; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

void SchedulerImpl::Shutdown() {
  // Serialize whole shutdowns: a second concurrent caller must not return
  // until the first has joined the workers (callers destroy the scheduler
  // right after Shutdown() returns). Idempotence is preserved — later
  // entrants see shutdown_complete_ and return immediately.
  std::lock_guard<std::mutex> shutdown_lock(shutdown_serial_mu_);
  std::vector<std::shared_ptr<QueryState>> cancelled;
  bool join_workers = false;
  {
    std::unique_lock<std::mutex> lock(admit_mu_);
    if (shutdown_complete_) return;
    if (!shutting_down_) {
      shutting_down_ = true;
      // Fail every query still waiting for admission: nothing of theirs
      // ever ran.
      for (uint64_t qid : admission_.CancelAll()) {
        auto it = runtimes_.find(qid);
        if (it == runtimes_.end()) continue;
        ++totals_.cancelled;
        cancelled.push_back(it->second->state);
        runtimes_.erase(it);
      }
      if (!started_) {
        // Workers never ran: admitted queries have queued tasks but no
        // side effects; cancel them too and drop the queue.
        for (auto& [qid, rt] : runtimes_) {
          if (rt->completed.load()) continue;
          ++totals_.cancelled;
          cancelled.push_back(rt->state);
        }
        runtimes_.clear();
        writing_relations_.clear();
        active_queries_ = 0;
        queue_.Close();
        shutdown_complete_ = true;
      }
    }
    if (started_ && !shutdown_complete_) {
      // Drain running queries, then let workers finish any remaining
      // pool-level tasks (poison packets) and exit.
      drain_cv_.wait(lock, [&] { return active_queries_ == 0; });
      if (!workers_.empty() || !queue_.closed()) {
        join_workers = true;
      }
    }
  }
  for (const auto& state : cancelled) {
    {
      std::lock_guard<std::mutex> lock(state->mu);
      state->status = Status::Cancelled(StrFormat(
          "query %llu cancelled by scheduler shutdown",
          static_cast<unsigned long long>(state->qid)));
      state->done = true;
    }
    state->cv.notify_all();
  }
  if (join_workers) {
    queue_.Close();
    std::vector<std::thread> workers;
    {
      std::lock_guard<std::mutex> lock(admit_mu_);
      workers.swap(workers_);
    }
    for (auto& w : workers) w.join();
    std::lock_guard<std::mutex> lock(admit_mu_);
    shutdown_complete_ = true;
  }
}

// ---------------------------------------------------------------------------
// SchedulerImpl: observability
// ---------------------------------------------------------------------------

ExecStats SchedulerImpl::AggregateStats() const {
  std::lock_guard<std::mutex> lock(admit_mu_);
  ExecStats stats = totals_.work;
  stats.wall_seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - run_start_)
                           .count();
  stats.faults_injected = counters_.faults_injected.load();
  stats.workers_abandoned = counters_.workers_abandoned.load();
  stats.redispatched_tasks = counters_.redispatched_tasks.load();
  stats.poison_dropped = counters_.poison_dropped.load();
  stats.sched_admitted = totals_.admitted_immediately;
  stats.sched_queued = totals_.queued;
  stats.sched_requeues = admission_.requeue_failures();
  stats.sched_queue_wait_ns = totals_.queue_wait_ns;
  stats.sched_skips = admission_.total_skips();
  const MvccStats mv = MvccDelta();
  stats.mvcc_snapshots_open = mv.snapshots_open;
  stats.mvcc_snapshots_captured = mv.snapshots_captured;
  stats.mvcc_versions_live = mv.versions_live;
  stats.mvcc_pages_copied = mv.pages_copied;
  stats.mvcc_gc_reclaimed = mv.gc_reclaimed;
  stats.mvcc_commits = mv.commits;
  stats.buffer = buffer_.stats();
  stats.trace = finished_trace_;
  return stats;
}

void SchedulerImpl::SnapshotMetrics(obs::MetricsRegistry* registry) const {
  std::lock_guard<std::mutex> lock(admit_mu_);
  registry->Set("engine.sched.submitted", totals_.submitted);
  registry->Set("engine.sched.admitted", totals_.admitted_immediately);
  registry->Set("engine.sched.queued", totals_.queued);
  registry->Set("engine.sched.completed", totals_.completed);
  registry->Set("engine.sched.cancelled", totals_.cancelled);
  registry->Set("engine.sched.requeues", admission_.requeue_failures());
  registry->Set("engine.sched.requeue_failures", admission_.requeue_failures());
  registry->Set("engine.sched.skips", admission_.total_skips());
  registry->Set("engine.sched.queue_wait_ns", totals_.queue_wait_ns);
  registry->Set("engine.sched.active_queries",
                static_cast<uint64_t>(active_queries_));
  registry->Set("engine.sched.queue_depth",
                static_cast<uint64_t>(admission_.queued()));
  registry->Set("engine.sched.pool.workers",
                static_cast<uint64_t>(opts().num_processors));
  registry->Set("engine.sched.pool.busy", static_cast<uint64_t>(std::max(
                                              0, busy_workers_.load())));
  registry->Set("engine.sched.pool.peak_busy",
                static_cast<uint64_t>(std::max(0, peak_busy_workers_.load())));
  const MvccStats mv = MvccDelta();
  registry->Set("engine.mvcc.snapshots_open", mv.snapshots_open);
  registry->Set("engine.mvcc.snapshots_captured", mv.snapshots_captured);
  registry->Set("engine.mvcc.versions_live", mv.versions_live);
  registry->Set("engine.mvcc.pages_copied", mv.pages_copied);
  registry->Set("engine.mvcc.gc_reclaimed", mv.gc_reclaimed);
  registry->Set("engine.mvcc.commits", mv.commits);
  registry->Set("engine.mvcc.last_commit_ts", mv.last_commit_ts);
}

}  // namespace internal

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

uint64_t QueryHandle::qid() const {
  return state_ != nullptr ? state_->qid : 0;
}

bool QueryHandle::Done() const {
  if (state_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->done;
}

StatusOr<QueryResult> QueryHandle::Wait() {
  if (state_ == nullptr) {
    return Status::FailedPrecondition("empty QueryHandle");
  }
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [&] { return state_->done; });
  if (state_->taken) {
    return Status::FailedPrecondition("query result already taken");
  }
  state_->taken = true;
  if (!state_->status.ok()) return state_->status;
  return std::move(state_->result);
}

uint64_t QueryHandle::queue_wait_ns() const {
  return state_ != nullptr
             ? state_->queue_wait_ns.load(std::memory_order_relaxed)
             : 0;
}

Scheduler::Scheduler(StorageEngine* storage, SchedulerOptions options)
    : impl_(std::make_unique<internal::SchedulerImpl>(storage,
                                                      std::move(options))) {}

Scheduler::Scheduler(StorageEngine* storage, ExecOptions exec_options)
    : Scheduler(storage, SchedulerOptions{std::move(exec_options), 8, false}) {}

Scheduler::~Scheduler() = default;

const SchedulerOptions& Scheduler::options() const { return impl_->options(); }

StatusOr<QueryHandle> Scheduler::Submit(const PlanNode& plan) {
  return impl_->Submit(plan);
}

void Scheduler::Start() { impl_->Start(); }

void Scheduler::Shutdown() { impl_->Shutdown(); }

ExecStats Scheduler::AggregateStats() const { return impl_->AggregateStats(); }

void Scheduler::SnapshotMetrics(obs::MetricsRegistry* registry) const {
  impl_->SnapshotMetrics(registry);
}

std::shared_ptr<const obs::Trace> Scheduler::FinishTrace() {
  return impl_->FinishTrace();
}

}  // namespace dfdb

#include "engine/reference.h"

#include <algorithm>
#include <vector>

#include "common/macros.h"
#include "operators/aggregator.h"
#include "operators/dedup.h"
#include "operators/kernels.h"
#include "operators/set_ops.h"
#include "operators/sort_merge_join.h"
#include "ra/analyzer.h"

namespace dfdb {

namespace {

/// A fully materialized intermediate relation.
struct Materialized {
  Schema schema;
  std::vector<PagePtr> pages;
};

/// Detects `left.col = right.col` predicates eligible for sort-merge.
bool ExtractEquiJoinColumns(const Expr& pred, int* outer_col, int* inner_col) {
  const auto* cmp = dynamic_cast<const CompareExpr*>(&pred);
  if (cmp == nullptr || cmp->op() != CompareOp::kEq) return false;
  const auto* l = dynamic_cast<const ColumnRefExpr*>(&cmp->lhs());
  const auto* r = dynamic_cast<const ColumnRefExpr*>(&cmp->rhs());
  if (l == nullptr || r == nullptr) return false;
  if (l->side() == Side::kLeft && r->side() == Side::kRight) {
    *outer_col = l->index();
    *inner_col = r->index();
    return true;
  }
  if (l->side() == Side::kRight && r->side() == Side::kLeft) {
    *outer_col = r->index();
    *inner_col = l->index();
    return true;
  }
  return false;
}

class Evaluator {
 public:
  Evaluator(StorageEngine* storage, bool use_sort_merge)
      : storage_(storage), use_sort_merge_(use_sort_merge) {}

  StatusOr<Materialized> Eval(const PlanNode& n) {
    Materialized out;
    out.schema = n.output_schema;
    const int page_bytes = storage_->default_page_bytes();
    const int width = std::max(1, n.output_schema.tuple_width());
    PagedSink sink(RelationId{0}, width, std::max(page_bytes, width),
                   [&out](PagePtr page) {
                     out.pages.push_back(std::move(page));
                     return Status::OK();
                   });

    switch (n.op) {
      case PlanOp::kScan: {
        DFDB_ASSIGN_OR_RETURN(HeapFile * file,
                              storage_->GetHeapFile(n.relation));
        DFDB_RETURN_IF_ERROR(file->Flush());
        for (PageId id : file->PageIds()) {
          DFDB_ASSIGN_OR_RETURN(PagePtr page, storage_->page_store().Get(id));
          out.pages.push_back(std::move(page));
        }
        return out;
      }
      case PlanOp::kRestrict: {
        DFDB_ASSIGN_OR_RETURN(Materialized in, Eval(n.child(0)));
        for (const PagePtr& page : in.pages) {
          DFDB_RETURN_IF_ERROR(
              RestrictPage(in.schema, *n.predicate, *page, &sink));
        }
        break;
      }
      case PlanOp::kProject: {
        DFDB_ASSIGN_OR_RETURN(Materialized in, Eval(n.child(0)));
        std::vector<int> indices;
        for (const std::string& name : n.columns) {
          DFDB_ASSIGN_OR_RETURN(int idx, in.schema.ColumnIndex(name));
          indices.push_back(idx);
        }
        DuplicateEliminator seen;
        for (const PagePtr& page : in.pages) {
          for (int i = 0; i < page->num_tuples(); ++i) {
            const std::string projected =
                ProjectTuple(in.schema, page->tuple(i), indices);
            if (!n.dedup || seen.Insert(Slice(projected))) {
              DFDB_RETURN_IF_ERROR(sink.Emit(Slice(projected)));
            }
          }
        }
        break;
      }
      case PlanOp::kJoin: {
        DFDB_ASSIGN_OR_RETURN(Materialized outer, Eval(n.child(0)));
        DFDB_ASSIGN_OR_RETURN(Materialized inner, Eval(n.child(1)));
        int oc = -1, ic = -1;
        if (use_sort_merge_ &&
            ExtractEquiJoinColumns(*n.predicate, &oc, &ic)) {
          DFDB_RETURN_IF_ERROR(SortMergeJoin(outer.schema, outer.pages, oc,
                                             inner.schema, inner.pages, ic,
                                             &sink));
        } else {
          for (const PagePtr& op : outer.pages) {
            for (const PagePtr& ip : inner.pages) {
              DFDB_RETURN_IF_ERROR(JoinPages(outer.schema, inner.schema,
                                             *n.predicate, *op, *ip, &sink));
            }
          }
        }
        break;
      }
      case PlanOp::kUnion: {
        DFDB_ASSIGN_OR_RETURN(Materialized left, Eval(n.child(0)));
        DFDB_ASSIGN_OR_RETURN(Materialized right, Eval(n.child(1)));
        UnionOp op(n.bag_semantics);
        for (const PagePtr& page : left.pages) {
          DFDB_RETURN_IF_ERROR(op.Consume(*page, &sink));
        }
        for (const PagePtr& page : right.pages) {
          DFDB_RETURN_IF_ERROR(op.Consume(*page, &sink));
        }
        break;
      }
      case PlanOp::kDifference: {
        DFDB_ASSIGN_OR_RETURN(Materialized left, Eval(n.child(0)));
        DFDB_ASSIGN_OR_RETURN(Materialized right, Eval(n.child(1)));
        DifferenceOp op;
        for (const PagePtr& page : right.pages) op.ConsumeRight(*page);
        for (const PagePtr& page : left.pages) {
          DFDB_RETURN_IF_ERROR(op.ConsumeLeft(*page, &sink));
        }
        break;
      }
      case PlanOp::kAggregate: {
        DFDB_ASSIGN_OR_RETURN(Materialized in, Eval(n.child(0)));
        DFDB_ASSIGN_OR_RETURN(
            Aggregator agg, Aggregator::Create(in.schema, n.output_schema,
                                               n.columns, n.aggregates));
        for (const PagePtr& page : in.pages) {
          DFDB_RETURN_IF_ERROR(agg.Consume(*page));
        }
        DFDB_RETURN_IF_ERROR(agg.Finish(&sink));
        break;
      }
      case PlanOp::kAppend: {
        DFDB_ASSIGN_OR_RETURN(Materialized in, Eval(n.child(0)));
        DFDB_ASSIGN_OR_RETURN(HeapFile * file,
                              storage_->GetHeapFile(n.relation));
        for (const PagePtr& page : in.pages) {
          DFDB_RETURN_IF_ERROR(file->AppendPage(*page));
        }
        DFDB_ASSIGN_OR_RETURN(RelationMeta meta,
                              storage_->catalog().GetRelation(n.relation));
        DFDB_RETURN_IF_ERROR(storage_->SyncStats(meta.id));
        return out;  // Appends produce no stream.
      }
      case PlanOp::kDelete: {
        DFDB_ASSIGN_OR_RETURN(HeapFile * file,
                              storage_->GetHeapFile(n.relation));
        const Expr* pred = n.predicate.get();
        Status pred_error = Status::OK();
        auto matcher = [&](const TupleView& t) {
          auto r = pred->EvalBool(t, nullptr);
          if (!r.ok()) {
            if (pred_error.ok()) pred_error = r.status();
            return false;
          }
          return *r;
        };
        DFDB_ASSIGN_OR_RETURN(uint64_t removed, file->DeleteWhere(matcher));
        (void)removed;
        DFDB_RETURN_IF_ERROR(pred_error);
        DFDB_ASSIGN_OR_RETURN(RelationMeta meta,
                              storage_->catalog().GetRelation(n.relation));
        DFDB_RETURN_IF_ERROR(storage_->SyncStats(meta.id));
        return out;
      }
    }
    DFDB_RETURN_IF_ERROR(sink.Finish());
    return out;
  }

 private:
  StorageEngine* storage_;
  bool use_sort_merge_;
};

}  // namespace

StatusOr<QueryResult> ReferenceExecutor::Execute(const PlanNode& plan,
                                                 bool use_sort_merge) {
  std::unique_ptr<PlanNode> owned = plan.Clone();
  Analyzer analyzer(&storage_->catalog());
  DFDB_ASSIGN_OR_RETURN(QueryAnalysis analysis, analyzer.Resolve(owned.get()));
  (void)analysis;
  Evaluator eval(storage_, use_sort_merge);
  DFDB_ASSIGN_OR_RETURN(Materialized m, eval.Eval(*owned));
  QueryResult result(m.schema);
  for (PagePtr& page : m.pages) result.AddPage(std::move(page));
  return result;
}

}  // namespace dfdb

#include "engine/edge.h"

#include <vector>

#include "common/macros.h"

namespace dfdb {

Status Edge::EmitTuple(Slice tuple) {
  PagePtr sealed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return Status::FailedPrecondition("edge already closed");
    if (current_ == nullptr) {
      DFDB_ASSIGN_OR_RETURN(Page page,
                            Page::Create(relation_, tuple_width_, unit_bytes_));
      current_ = std::make_unique<Page>(std::move(page));
    }
    DFDB_RETURN_IF_ERROR(current_->Append(tuple));
    ++tuples_emitted_;
    if (current_->full()) {
      sealed = SealPage(std::move(*current_));
      current_.reset();
      ++pages_delivered_;
    }
  }
  if (sealed) on_page_(std::move(sealed));
  return Status::OK();
}

Status Edge::EmitTupleParts(const Slice* parts, size_t n) {
  PagePtr sealed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return Status::FailedPrecondition("edge already closed");
    if (current_ == nullptr) {
      DFDB_ASSIGN_OR_RETURN(Page page,
                            Page::Create(relation_, tuple_width_, unit_bytes_));
      current_ = std::make_unique<Page>(std::move(page));
    }
    DFDB_RETURN_IF_ERROR(current_->AppendParts(parts, n));
    ++tuples_emitted_;
    if (current_->full()) {
      sealed = SealPage(std::move(*current_));
      current_.reset();
      ++pages_delivered_;
    }
  }
  if (sealed) on_page_(std::move(sealed));
  return Status::OK();
}

Status Edge::EmitPage(const PagePtr& page) {
  if (page->tuple_width() != tuple_width_) {
    return Status::InvalidArgument("page tuple width does not match edge");
  }
  // Fast path: a full page of exactly the edge's unit passes through, which
  // keeps base-relation pages intact under page granularity.
  bool passthrough = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return Status::FailedPrecondition("edge already closed");
    if (page->capacity_bytes() == unit_bytes_ && page->full() &&
        current_ == nullptr) {
      ++pages_delivered_;
      tuples_emitted_ += static_cast<uint64_t>(page->num_tuples());
      passthrough = true;
    }
  }
  if (passthrough) {
    on_page_(page);
    return Status::OK();
  }
  for (int i = 0; i < page->num_tuples(); ++i) {
    DFDB_RETURN_IF_ERROR(EmitTuple(page->tuple(i)));
  }
  return Status::OK();
}

Status Edge::CloseProducer() {
  PagePtr sealed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return Status::FailedPrecondition("edge already closed");
    closed_ = true;
    if (current_ != nullptr && !current_->empty()) {
      sealed = SealPage(std::move(*current_));
      ++pages_delivered_;
    }
    current_.reset();
  }
  if (sealed) on_page_(std::move(sealed));
  on_close_();
  return Status::OK();
}

}  // namespace dfdb

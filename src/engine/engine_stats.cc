#include "engine/engine_stats.h"

#include "common/string_util.h"
#include "obs/metrics.h"

namespace dfdb {

std::string ExecStats::ToString() const {
  std::string out = StrFormat(
      "wall=%.3fs tasks=%llu packets=%llu arb=%s dist=%s ovh=%s pages=%llu "
      "tuples=%llu | %s",
      wall_seconds, static_cast<unsigned long long>(tasks_executed),
      static_cast<unsigned long long>(packets),
      HumanBytes(static_cast<int64_t>(arbitration_bytes)).c_str(),
      HumanBytes(static_cast<int64_t>(distribution_bytes)).c_str(),
      HumanBytes(static_cast<int64_t>(overhead_bytes)).c_str(),
      static_cast<unsigned long long>(pages_produced),
      static_cast<unsigned long long>(tuples_produced),
      buffer.ToString().c_str());
  if (sched_queued > 0) {
    out += StrFormat(
        " | sched: admitted=%llu queued=%llu requeues=%llu wait=%.3fms",
        static_cast<unsigned long long>(sched_admitted),
        static_cast<unsigned long long>(sched_queued),
        static_cast<unsigned long long>(sched_requeues),
        static_cast<double>(sched_queue_wait_ns) / 1e6);
  }
  if (faults_injected > 0) {
    out += StrFormat(
        " | faults=%llu abandoned=%llu redispatched=%llu poison=%llu",
        static_cast<unsigned long long>(faults_injected),
        static_cast<unsigned long long>(workers_abandoned),
        static_cast<unsigned long long>(redispatched_tasks),
        static_cast<unsigned long long>(poison_dropped));
  }
  if (pipeline_fused_edges > 0 || pipeline_runtime_fallbacks > 0) {
    out += StrFormat(
        " | pipeline: fused=%llu materialized=%llu elided=%llu "
        "fused_pages=%llu fallbacks=%llu",
        static_cast<unsigned long long>(pipeline_fused_edges),
        static_cast<unsigned long long>(pipeline_materialized_edges),
        static_cast<unsigned long long>(pipeline_pages_elided),
        static_cast<unsigned long long>(pipeline_fused_pages),
        static_cast<unsigned long long>(pipeline_runtime_fallbacks));
  }
  if (index.any()) {
    out += StrFormat(
        " | index: pruned=%llu zonemap=%llu probes=%llu fallbacks=%llu",
        static_cast<unsigned long long>(index.pages_pruned),
        static_cast<unsigned long long>(index.zonemap_hits),
        static_cast<unsigned long long>(index.gridfile_probes),
        static_cast<unsigned long long>(index.fallback_scans));
  }
  if (pushdown.any()) {
    out += StrFormat(
        " | pushdown: pages=%llu in=%llu out=%llu elided=%s fallbacks=%llu",
        static_cast<unsigned long long>(pushdown.pages_filtered),
        static_cast<unsigned long long>(pushdown.tuples_in),
        static_cast<unsigned long long>(pushdown.tuples_out),
        HumanBytes(static_cast<int64_t>(pushdown.bytes_elided)).c_str(),
        static_cast<unsigned long long>(pushdown.fallbacks));
  }
  if (kernel.compiled_pages > 0 || kernel.interpreted_pages > 0 ||
      kernel.hash_joins > 0 || kernel.nested_joins > 0) {
    out += StrFormat(
        " | kernel: compiled=%llu interpreted=%llu fallbacks=%llu "
        "hash_joins=%llu nested_joins=%llu collisions=%llu",
        static_cast<unsigned long long>(kernel.compiled_pages),
        static_cast<unsigned long long>(kernel.interpreted_pages),
        static_cast<unsigned long long>(kernel.compile_fallbacks),
        static_cast<unsigned long long>(kernel.hash_joins),
        static_cast<unsigned long long>(kernel.nested_joins),
        static_cast<unsigned long long>(kernel.hash_build_collisions));
  }
  return out;
}

void RegisterMetrics(const ExecStats& stats, obs::MetricsRegistry* registry) {
  registry->Set("engine.tasks_executed", stats.tasks_executed);
  registry->Set("engine.packets", stats.packets);
  registry->Set("engine.arbitration_bytes", stats.arbitration_bytes);
  registry->Set("engine.distribution_bytes", stats.distribution_bytes);
  registry->Set("engine.overhead_bytes", stats.overhead_bytes);
  registry->Set("engine.network_bytes", stats.network_bytes());
  registry->Set("engine.pages_produced", stats.pages_produced);
  registry->Set("engine.tuples_produced", stats.tuples_produced);
  registry->Set("engine.sched.admitted", stats.sched_admitted);
  registry->Set("engine.sched.queued", stats.sched_queued);
  registry->Set("engine.sched.requeues", stats.sched_requeues);
  registry->Set("engine.sched.queue_wait_ns", stats.sched_queue_wait_ns);
  registry->Set("engine.sched.skips", stats.sched_skips);
  registry->Set("engine.mvcc.snapshots_open", stats.mvcc_snapshots_open);
  registry->Set("engine.mvcc.snapshots_captured",
                stats.mvcc_snapshots_captured);
  registry->Set("engine.mvcc.versions_live", stats.mvcc_versions_live);
  registry->Set("engine.mvcc.pages_copied", stats.mvcc_pages_copied);
  registry->Set("engine.mvcc.gc_reclaimed", stats.mvcc_gc_reclaimed);
  registry->Set("engine.mvcc.commits", stats.mvcc_commits);
  registry->Set("engine.pipeline.fused_edges", stats.pipeline_fused_edges);
  registry->Set("engine.pipeline.materialized_edges",
                stats.pipeline_materialized_edges);
  registry->Set("engine.pipeline.pages_elided", stats.pipeline_pages_elided);
  registry->Set("engine.pipeline.fused_pages", stats.pipeline_fused_pages);
  registry->Set("engine.pipeline.runtime_fallbacks",
                stats.pipeline_runtime_fallbacks);
  registry->Set("engine.kernel.compiled_pages", stats.kernel.compiled_pages);
  registry->Set("engine.kernel.interpreted_pages",
                stats.kernel.interpreted_pages);
  registry->Set("engine.kernel.compile_fallbacks",
                stats.kernel.compile_fallbacks);
  registry->Set("engine.kernel.hash_joins", stats.kernel.hash_joins);
  registry->Set("engine.kernel.nested_joins", stats.kernel.nested_joins);
  registry->Set("engine.kernel.hash_build_collisions",
                stats.kernel.hash_build_collisions);
  registry->Set("engine.index.pages_pruned", stats.index.pages_pruned);
  registry->Set("engine.index.zonemap_hits", stats.index.zonemap_hits);
  registry->Set("engine.index.gridfile_probes", stats.index.gridfile_probes);
  registry->Set("engine.index.fallback_scans", stats.index.fallback_scans);
  RegisterPushdownMetrics(stats.pushdown, "engine.pushdown.", registry);
  registry->Set("engine.faults.injected", stats.faults_injected);
  registry->Set("engine.faults.workers_abandoned", stats.workers_abandoned);
  registry->Set("engine.faults.redispatched_tasks", stats.redispatched_tasks);
  registry->Set("engine.faults.poison_dropped", stats.poison_dropped);
  RegisterMetrics(stats.buffer, registry);
}

obs::RunReport ExecStats::ToReport() const {
  obs::RunReport report;
  report.backend = "engine";
  report.seconds = wall_seconds;
  report.simulated_time = false;
  report.data_bytes = network_bytes();
  report.packets = packets;
  report.faults = faults_injected;
  RegisterMetrics(*this, &report.counters);
  report.trace = trace;
  return report;
}

}  // namespace dfdb

/// \file run.h
/// \brief One-shot query execution entry points.
///
/// RunQuery/RunBatch stand up a private Scheduler per call — workers run to
/// completion and tear down, so wall-clock measurements are self-contained
/// and batches replay deterministically with one worker (the scheduler is
/// started only after every query has been submitted and stamped). They
/// supersede Executor::Execute/ExecuteBatch; long-lived multi-user services
/// should hold a resident Scheduler and call Submit() directly.

#ifndef DFDB_ENGINE_RUN_H_
#define DFDB_ENGINE_RUN_H_

#include <vector>

#include "common/statusor.h"
#include "engine/engine_stats.h"
#include "engine/exec_options.h"
#include "engine/query_result.h"
#include "ra/plan.h"
#include "storage/storage_engine.h"

namespace dfdb {

/// Runs one query on a private one-shot scheduler. The plan is cloned and
/// analyzed internally, so \p plan may be reused across runs and engines.
///
/// Statistics ride on the result: `result.stats()` holds the per-query
/// snapshot (and the trace when ExecOptions::enable_trace is set). When
/// \p batch_stats is non-null it receives the whole-run aggregate,
/// including pool-wide fault counters and buffer-hierarchy traffic.
StatusOr<QueryResult> RunQuery(StorageEngine* storage, const PlanNode& plan,
                               const ExecOptions& options,
                               ExecStats* batch_stats = nullptr);

/// Runs a batch of queries concurrently under the scheduler's concurrency
/// control: with MVCC snapshots (the default) every query is stamped with a
/// snapshot in submission order — readers never queue, writers serialize on
/// write-write conflicts only. Results are returned in input order, each
/// carrying its own per-query ExecStats; \p batch_stats (optional) receives
/// the batch aggregate.
StatusOr<std::vector<QueryResult>> RunBatch(
    StorageEngine* storage, const std::vector<const PlanNode*>& plans,
    const ExecOptions& options, ExecStats* batch_stats = nullptr);

}  // namespace dfdb

#endif  // DFDB_ENGINE_RUN_H_

/// \file reference.h
/// \brief Serial reference executor: the uniprocessor baseline.
///
/// Evaluates a query tree bottom-up, one node at a time, fully
/// materializing every intermediate — i.e. relation-level granularity on a
/// single processor. It serves two purposes:
///  1. a correctness oracle for the data-flow engine (results must match up
///     to row order), and
///  2. the serial baseline in the pipelining-comparison benchmark
///     (Section 2.3 contrasts data-flow with Smith & Chang / Yao style
///     pipelining; the serial executor is the degenerate no-overlap case).

#ifndef DFDB_ENGINE_REFERENCE_H_
#define DFDB_ENGINE_REFERENCE_H_

#include "common/statusor.h"
#include "engine/query_result.h"
#include "ra/plan.h"
#include "storage/storage_engine.h"

namespace dfdb {

/// \brief One-node-at-a-time serial evaluator.
class ReferenceExecutor {
 public:
  explicit ReferenceExecutor(StorageEngine* storage) : storage_(storage) {}

  /// Runs \p plan (cloned and analyzed internally) and materializes the
  /// result. For equi-joins, \p use_sort_merge selects the Blasgen-Eswaran
  /// sorted-merge algorithm instead of nested loops.
  StatusOr<QueryResult> Execute(const PlanNode& plan,
                                bool use_sort_merge = false);

 private:
  StorageEngine* storage_;
};

}  // namespace dfdb

#endif  // DFDB_ENGINE_REFERENCE_H_

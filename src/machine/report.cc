#include "machine/report.h"

#include "common/string_util.h"
#include "obs/metrics.h"

namespace dfdb {

std::string MachineReport::ToString() const {
  std::string out = StrFormat(
      "makespan=%s outer=%s inner=%s cache=%s disk=%s ipUtil=%.1f%% "
      "(ipkt=%llu rpkt=%llu cpkt=%llu bcast=%llu events=%llu)",
      makespan.ToString().c_str(), HumanBitsPerSecond(OuterRingBps()).c_str(),
      HumanBitsPerSecond(InnerRingBps()).c_str(),
      HumanBitsPerSecond(CacheBps()).c_str(),
      HumanBitsPerSecond(DiskBps()).c_str(), IpUtilization() * 100.0,
      static_cast<unsigned long long>(instruction_packets),
      static_cast<unsigned long long>(result_packets),
      static_cast<unsigned long long>(control_packets),
      static_cast<unsigned long long>(broadcasts),
      static_cast<unsigned long long>(events));
  if (faults.any()) {
    out += " | ";
    out += faults.ToString();
  }
  if (pipeline_fused_edges > 0 || pipeline_runtime_fallbacks > 0) {
    out += StrFormat(
        " | pipeline: fused=%llu materialized=%llu elided=%llu "
        "fused_pages=%llu fallbacks=%llu",
        static_cast<unsigned long long>(pipeline_fused_edges),
        static_cast<unsigned long long>(pipeline_materialized_edges),
        static_cast<unsigned long long>(pipeline_pages_elided),
        static_cast<unsigned long long>(pipeline_fused_pages),
        static_cast<unsigned long long>(pipeline_runtime_fallbacks));
  }
  if (index.any()) {
    out += StrFormat(
        " | index: pruned=%llu zonemap=%llu probes=%llu fallbacks=%llu",
        static_cast<unsigned long long>(index.pages_pruned),
        static_cast<unsigned long long>(index.zonemap_hits),
        static_cast<unsigned long long>(index.gridfile_probes),
        static_cast<unsigned long long>(index.fallback_scans));
  }
  if (pushdown.any()) {
    out += StrFormat(
        " | pushdown: pages=%llu in=%llu out=%llu elided=%s fallbacks=%llu",
        static_cast<unsigned long long>(pushdown.pages_filtered),
        static_cast<unsigned long long>(pushdown.tuples_in),
        static_cast<unsigned long long>(pushdown.tuples_out),
        HumanBytes(static_cast<int64_t>(pushdown.bytes_elided)).c_str(),
        static_cast<unsigned long long>(pushdown.fallbacks));
  }
  if (kernel.compiled_pages > 0 || kernel.interpreted_pages > 0 ||
      kernel.hash_joins > 0 || kernel.nested_joins > 0) {
    out += StrFormat(
        " | kernel: compiled=%llu interpreted=%llu fallbacks=%llu "
        "hash_joins=%llu nested_joins=%llu collisions=%llu",
        static_cast<unsigned long long>(kernel.compiled_pages),
        static_cast<unsigned long long>(kernel.interpreted_pages),
        static_cast<unsigned long long>(kernel.compile_fallbacks),
        static_cast<unsigned long long>(kernel.hash_joins),
        static_cast<unsigned long long>(kernel.nested_joins),
        static_cast<unsigned long long>(kernel.hash_build_collisions));
  }
  return out;
}

void RegisterMetrics(const LevelBytes& bytes, obs::MetricsRegistry* registry) {
  registry->Set("machine.outer_ring_bytes", bytes.outer_ring);
  registry->Set("machine.inner_ring_bytes", bytes.inner_ring);
  registry->Set("machine.cache_to_ic_bytes", bytes.cache_to_ic);
  registry->Set("machine.ic_to_cache_bytes", bytes.ic_to_cache);
  registry->Set("machine.disk_read_bytes", bytes.disk_read);
  registry->Set("machine.disk_write_bytes", bytes.disk_write);
}

void RegisterMetrics(const FaultStats& faults, obs::MetricsRegistry* registry) {
  registry->Set("machine.faults.injected", faults.injected);
  registry->Set("machine.faults.ip_kills", faults.ip_kills);
  registry->Set("machine.faults.ic_failures", faults.ic_failures);
  registry->Set("machine.faults.packets_dropped", faults.packets_dropped);
  registry->Set("machine.faults.packets_corrupted", faults.packets_corrupted);
  registry->Set("machine.faults.cache_stalls", faults.cache_stalls);
  registry->Set("machine.faults.timeouts", faults.timeouts);
  registry->Set("machine.faults.retries", faults.retries);
  registry->Set("machine.faults.redispatches", faults.redispatches);
  registry->Set("machine.faults.instructions_rehomed",
                faults.instructions_rehomed);
  registry->Set("machine.faults.retry_ns_lost",
                static_cast<uint64_t>(faults.retry_ticks_lost.nanos()));
  registry->Set("machine.faults.cache_stall_ns",
                static_cast<uint64_t>(faults.cache_stall_time.nanos()));
}

obs::RunReport MachineReport::ToReport() const {
  obs::RunReport report;
  report.backend = "machine";
  report.seconds = makespan.ToSecondsF();
  report.simulated_time = true;
  report.data_bytes = bytes.outer_ring;
  report.packets = instruction_packets + result_packets + control_packets;
  report.faults = faults.injected;
  RegisterMetrics(bytes, &report.counters);
  RegisterMetrics(faults, &report.counters);
  report.counters.Set("machine.instruction_packets", instruction_packets);
  report.counters.Set("machine.result_packets", result_packets);
  report.counters.Set("machine.control_packets", control_packets);
  report.counters.Set("machine.broadcasts", broadcasts);
  report.counters.Set("machine.direct_routes", direct_routes);
  report.counters.Set("machine.events", events);
  report.counters.Set("machine.pipeline.fused_edges", pipeline_fused_edges);
  report.counters.Set("machine.pipeline.materialized_edges",
                      pipeline_materialized_edges);
  report.counters.Set("machine.pipeline.pages_elided", pipeline_pages_elided);
  report.counters.Set("machine.pipeline.fused_pages", pipeline_fused_pages);
  report.counters.Set("machine.pipeline.runtime_fallbacks",
                      pipeline_runtime_fallbacks);
  report.counters.Set("machine.kernel.compiled_pages", kernel.compiled_pages);
  report.counters.Set("machine.kernel.interpreted_pages",
                      kernel.interpreted_pages);
  report.counters.Set("machine.kernel.compile_fallbacks",
                      kernel.compile_fallbacks);
  report.counters.Set("machine.kernel.hash_joins", kernel.hash_joins);
  report.counters.Set("machine.kernel.nested_joins", kernel.nested_joins);
  report.counters.Set("machine.kernel.hash_build_collisions",
                      kernel.hash_build_collisions);
  report.counters.Set("machine.index.pages_pruned", index.pages_pruned);
  report.counters.Set("machine.index.zonemap_hits", index.zonemap_hits);
  report.counters.Set("machine.index.gridfile_probes", index.gridfile_probes);
  report.counters.Set("machine.index.fallback_scans", index.fallback_scans);
  RegisterPushdownMetrics(pushdown, "machine.pushdown.", &report.counters);
  report.counters.Set("machine.num_ips", static_cast<uint64_t>(num_ips));
  report.counters.Set("machine.makespan_ns",
                      static_cast<uint64_t>(makespan.nanos()));
  report.counters.Set("machine.ip_busy_ns",
                      static_cast<uint64_t>(ip_busy_total.nanos()));
  report.trace = trace;
  return report;
}

}  // namespace dfdb

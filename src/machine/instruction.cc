#include "machine/instruction.h"

#include "common/macros.h"
#include "ra/expr_compile.h"

namespace dfdb {

namespace {

bool IsBarrierOp(const PlanNode& n) {
  switch (n.op) {
    case PlanOp::kAggregate:
    case PlanOp::kDifference:
      return true;
    case PlanOp::kProject:
      return n.dedup;
    case PlanOp::kUnion:
      return !n.bag_semantics;
    default:
      return false;
  }
}

/// True if the fused edge below \p child can be folded into a consumer
/// operand: a restrict directly over a base relation whose predicate the
/// compiler accepts. The IC then filters during staging compaction and the
/// restrict needs no instruction at all.
bool Foldable(const PlanNode& child) {
  if (child.op != PlanOp::kRestrict || child.predicate == nullptr) return false;
  if (child.num_children() != 1 || child.child(0).op != PlanOp::kScan) {
    return false;
  }
  return CompiledPredicate::Compile(*child.predicate,
                                    child.child(0).output_schema)
      .ok();
}

/// Compiles the subtree rooted at \p n; returns the producing instruction
/// id. \p n must not be a scan.
int CompileNode(const PlanNode* n, uint64_t query_id, size_t query_index,
                PipelinePolicy pipeline, MachineProgram* prog) {
  MachineInstruction instr;
  instr.query_id = query_id;
  instr.query_index = query_index;
  instr.op = n->op;
  instr.node = n;
  instr.output_schema = n->output_schema;
  instr.barrier = IsBarrierOp(*n);
  for (int i = 0; i < n->num_children(); ++i) {
    const PlanNode& child = n->child(i);
    MachineOperand operand;
    operand.schema = child.output_schema;
    if (child.op == PlanOp::kScan) {
      operand.is_base = true;
      operand.base_relation = child.relation;
    } else {
      const bool wants_fuse =
          pipeline == PipelinePolicy::kForceFuse ||
          (pipeline == PipelinePolicy::kHonorPlan && child.pipeline_fused);
      if (wants_fuse && Foldable(child)) {
        operand.is_base = true;
        operand.base_relation = child.child(0).relation;
        operand.filter = &child;
        prog->pipeline.fused_edges++;
        instr.operands.push_back(std::move(operand));
        continue;
      }
      if (wants_fuse) prog->pipeline.fallbacks++;
      prog->pipeline.materialized_edges++;
      operand.producer =
          CompileNode(&child, query_id, query_index, pipeline, prog);
      prog->instructions[static_cast<size_t>(operand.producer)].consumer_slot =
          i;
    }
    instr.operands.push_back(std::move(operand));
  }
  // kDelete has no children but reads its target relation as an operand.
  if (n->op == PlanOp::kDelete) {
    MachineOperand operand;
    operand.is_base = true;
    operand.base_relation = n->relation;
    operand.schema = n->output_schema;
    instr.operands.push_back(std::move(operand));
  }
  instr.id = static_cast<int>(prog->instructions.size());
  prog->instructions.push_back(std::move(instr));
  const int id = prog->instructions.back().id;
  // Children compiled above recorded their slots; now set their consumer.
  for (int i = 0; i < n->num_children(); ++i) {
    const MachineOperand& operand =
        prog->instructions[static_cast<size_t>(id)].operands[static_cast<size_t>(
            i)];
    if (!operand.is_base) {
      prog->instructions[static_cast<size_t>(operand.producer)].consumer = id;
    }
  }
  return id;
}

}  // namespace

StatusOr<MachineProgram> CompileProgram(
    const Catalog& catalog, const std::vector<const PlanNode*>& queries,
    PipelinePolicy pipeline) {
  MachineProgram prog;
  Analyzer analyzer(&catalog);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    if (queries[qi] == nullptr) {
      return Status::InvalidArgument("null query plan");
    }
    std::unique_ptr<PlanNode> plan = queries[qi]->Clone();
    // Bare scans become an always-true restrict so every query has at least
    // one instruction.
    if (plan->op == PlanOp::kScan) {
      plan = MakeRestrict(std::move(plan), Eq(Lit(1), Lit(1)));
    }
    DFDB_ASSIGN_OR_RETURN(QueryAnalysis analysis,
                          analyzer.Resolve(plan.get()));
    prog.analyses.push_back(std::move(analysis));
    const uint64_t query_id = static_cast<uint64_t>(qi) + 1;
    const int root = CompileNode(plan.get(), query_id, qi, pipeline, &prog);
    prog.roots.push_back(root);
    prog.plans.push_back(std::move(plan));
  }
  return prog;
}

}  // namespace dfdb

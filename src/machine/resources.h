/// \file resources.h
/// \brief Contended device models for the machine simulator.

#ifndef DFDB_MACHINE_RESOURCES_H_
#define DFDB_MACHINE_RESOURCES_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/sim_time.h"

namespace dfdb {

/// \brief A serially shared device (a ring, a disk drive): jobs queue FIFO
/// and each occupies the device for its service time.
class SerialResource {
 public:
  /// Reserves the device for \p service starting no earlier than \p now.
  /// Returns the completion time; the device is busy until then.
  SimTime Acquire(SimTime now, SimTime service) {
    const SimTime start = next_free_ > now ? next_free_ : now;
    next_free_ = start + service;
    busy_ += service;
    return next_free_;
  }

  SimTime next_free() const { return next_free_; }
  /// Total busy time (for utilization reports).
  SimTime busy_time() const { return busy_; }

 private:
  SimTime next_free_;
  SimTime busy_;
};

/// \brief LRU residency set for the shared disk cache: remembers which page
/// ids are cached, evicting least-recently-used entries beyond capacity.
class LruPageSet {
 public:
  explicit LruPageSet(size_t capacity) : capacity_(capacity) {}

  /// Returns true (a hit) and refreshes recency if present.
  bool Touch(uint64_t id) {
    auto it = index_.find(id);
    if (it == index_.end()) return false;
    lru_.erase(it->second);
    lru_.push_front(id);
    it->second = lru_.begin();
    return true;
  }

  /// Inserts (or refreshes) \p id, evicting if needed.
  void Insert(uint64_t id) {
    std::vector<uint64_t> evicted;
    InsertEvict(id, &evicted);
  }

  /// Inserts (or refreshes) \p id; LRU victims displaced to make room are
  /// appended to \p evicted so the caller can account for the write-back.
  void InsertEvict(uint64_t id, std::vector<uint64_t>* evicted) {
    if (Touch(id)) return;
    if (capacity_ == 0) return;
    while (lru_.size() >= capacity_) {
      evicted->push_back(lru_.back());
      index_.erase(lru_.back());
      lru_.pop_back();
    }
    lru_.push_front(id);
    index_[id] = lru_.begin();
  }

  /// Drops \p id (a consumed page frees its frame without traffic).
  /// Returns true if it was resident.
  bool Remove(uint64_t id) {
    auto it = index_.find(id);
    if (it == index_.end()) return false;
    lru_.erase(it->second);
    index_.erase(it);
    return true;
  }

  bool Contains(uint64_t id) const { return index_.count(id) > 0; }

  size_t size() const { return lru_.size(); }

 private:
  size_t capacity_;
  std::list<uint64_t> lru_;
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> index_;
};

}  // namespace dfdb

#endif  // DFDB_MACHINE_RESOURCES_H_

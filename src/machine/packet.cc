#include "machine/packet.h"

#include <cstring>

#include "common/string_util.h"

namespace dfdb {

namespace {

constexpr size_t kNameBytes = 8;  // Fixed-width relation-name field.

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}
void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}
void PutName(std::string* out, const std::string& name) {
  char buf[kNameBytes] = {0};
  std::memcpy(buf, name.data(), std::min(name.size(), kNameBytes));
  out->append(buf, kNameBytes);
}

class Reader {
 public:
  explicit Reader(Slice s) : s_(s) {}
  bool ReadU32(uint32_t* v) {
    if (s_.size() < 4) return false;
    std::memcpy(v, s_.data(), 4);
    s_.remove_prefix(4);
    return true;
  }
  bool ReadU64(uint64_t* v) {
    if (s_.size() < 8) return false;
    std::memcpy(v, s_.data(), 8);
    s_.remove_prefix(8);
    return true;
  }
  bool ReadName(std::string* v) {
    if (s_.size() < kNameBytes) return false;
    size_t len = kNameBytes;
    while (len > 0 && s_.data()[len - 1] == '\0') --len;
    v->assign(s_.data(), len);
    s_.remove_prefix(kNameBytes);
    return true;
  }
  bool ReadBlob(size_t n, Slice* out) {
    if (s_.size() < n) return false;
    *out = Slice(s_.data(), n);
    s_.remove_prefix(n);
    return true;
  }
  bool empty() const { return s_.empty(); }

 private:
  Slice s_;
};

}  // namespace

int64_t PacketOperand::WireBytes() const {
  const int64_t page_bytes =
      page.has_value() ? static_cast<int64_t>(page->Serialize().size()) : 0;
  return static_cast<int64_t>(kNameBytes) + 4 + 4 + page_bytes;
}

int64_t InstructionPacket::WireBytes() const {
  // IPid(4) length(4) query(8) sender(4) dest(4) flush(4) opcode(4)
  // result name(8) result tuple len(4) operand count(4).
  int64_t total = 4 + 4 + 8 + 4 + 4 + 4 + 4 + kNameBytes + 4 + 4;
  for (const PacketOperand& op : operands) total += op.WireBytes();
  return total;
}

std::string InstructionPacket::Serialize() const {
  std::string out;
  PutU32(&out, ip_id);
  PutU32(&out, static_cast<uint32_t>(WireBytes()));
  PutU64(&out, query_id);
  PutU32(&out, ic_id_sender);
  PutU32(&out, ic_id_destination);
  PutU32(&out, flush_when_done ? 1 : 0);
  PutU32(&out, static_cast<uint32_t>(opcode));
  PutName(&out, result_relation_name);
  PutU32(&out, result_tuple_length);
  PutU32(&out, static_cast<uint32_t>(operands.size()));
  for (const PacketOperand& op : operands) {
    PutName(&out, op.relation_name);
    PutU32(&out, op.tuple_length);
    const std::string page =
        op.page.has_value() ? op.page->Serialize() : std::string();
    PutU32(&out, static_cast<uint32_t>(page.size()));
    out += page;
  }
  return out;
}

StatusOr<InstructionPacket> InstructionPacket::Deserialize(Slice bytes) {
  Reader r(bytes);
  InstructionPacket pkt;
  uint32_t length = 0, flush = 0, opcode = 0, count = 0;
  if (!r.ReadU32(&pkt.ip_id) || !r.ReadU32(&length) ||
      !r.ReadU64(&pkt.query_id) || !r.ReadU32(&pkt.ic_id_sender) ||
      !r.ReadU32(&pkt.ic_id_destination) || !r.ReadU32(&flush) ||
      !r.ReadU32(&opcode) || !r.ReadName(&pkt.result_relation_name) ||
      !r.ReadU32(&pkt.result_tuple_length) || !r.ReadU32(&count)) {
    return Status::Corruption("truncated instruction packet header");
  }
  pkt.flush_when_done = flush != 0;
  pkt.opcode = static_cast<PacketOpcode>(opcode);
  for (uint32_t i = 0; i < count; ++i) {
    PacketOperand op;
    uint32_t page_len = 0;
    if (!r.ReadName(&op.relation_name) || !r.ReadU32(&op.tuple_length) ||
        !r.ReadU32(&page_len)) {
      return Status::Corruption("truncated operand header");
    }
    if (page_len > 0) {
      Slice blob;
      if (!r.ReadBlob(page_len, &blob)) {
        return Status::Corruption("truncated operand page");
      }
      auto page = Page::Deserialize(blob);
      if (!page.ok()) return page.status();
      op.page = *std::move(page);
    }
    pkt.operands.push_back(std::move(op));
  }
  if (static_cast<int64_t>(length) != pkt.WireBytes()) {
    return Status::Corruption(
        StrFormat("packet length field %u does not match actual %lld", length,
                  static_cast<long long>(pkt.WireBytes())));
  }
  return pkt;
}

int64_t ResultPacket::WireBytes() const {
  const int64_t page_bytes =
      page.has_value() ? static_cast<int64_t>(page->Serialize().size()) : 0;
  // ICid(4) length(4) name(8) page length(4) data.
  return 4 + 4 + static_cast<int64_t>(kNameBytes) + 4 + page_bytes;
}

std::string ResultPacket::Serialize() const {
  std::string out;
  PutU32(&out, ic_id);
  PutU32(&out, static_cast<uint32_t>(WireBytes()));
  PutName(&out, relation_name);
  const std::string p = page.has_value() ? page->Serialize() : std::string();
  PutU32(&out, static_cast<uint32_t>(p.size()));
  out += p;
  return out;
}

StatusOr<ResultPacket> ResultPacket::Deserialize(Slice bytes) {
  Reader r(bytes);
  ResultPacket pkt;
  uint32_t length = 0, page_len = 0;
  if (!r.ReadU32(&pkt.ic_id) || !r.ReadU32(&length) ||
      !r.ReadName(&pkt.relation_name) || !r.ReadU32(&page_len)) {
    return Status::Corruption("truncated result packet");
  }
  if (page_len > 0) {
    Slice blob;
    if (!r.ReadBlob(page_len, &blob)) {
      return Status::Corruption("truncated result page");
    }
    auto page = Page::Deserialize(blob);
    if (!page.ok()) return page.status();
    pkt.page = *std::move(page);
  }
  if (static_cast<int64_t>(length) != pkt.WireBytes()) {
    return Status::Corruption("result packet length mismatch");
  }
  return pkt;
}

int64_t ControlPacket::WireBytes() const {
  // ICid(4) length(4) IPid(4) message(4) argument(4).
  return 4 + 4 + 4 + 4 + 4;
}

std::string ControlPacket::Serialize() const {
  std::string out;
  PutU32(&out, ic_id);
  PutU32(&out, static_cast<uint32_t>(WireBytes()));
  PutU32(&out, ip_id_sender);
  PutU32(&out, static_cast<uint32_t>(message));
  PutU32(&out, argument);
  return out;
}

StatusOr<ControlPacket> ControlPacket::Deserialize(Slice bytes) {
  Reader r(bytes);
  ControlPacket pkt;
  uint32_t length = 0, message = 0;
  if (!r.ReadU32(&pkt.ic_id) || !r.ReadU32(&length) ||
      !r.ReadU32(&pkt.ip_id_sender) || !r.ReadU32(&message) ||
      !r.ReadU32(&pkt.argument)) {
    return Status::Corruption("truncated control packet");
  }
  pkt.message = static_cast<ControlMessage>(message);
  if (static_cast<int64_t>(length) != pkt.WireBytes() || !r.empty()) {
    return Status::Corruption("control packet length mismatch");
  }
  return pkt;
}

}  // namespace dfdb

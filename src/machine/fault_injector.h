/// \file fault_injector.h
/// \brief Deterministic fault injection for the ring machine.
///
/// Section 4 argues for *distributed* instruction control precisely so the
/// machine degrades gracefully when components fail. A FaultPlan is a
/// seeded, fully deterministic schedule of component faults — IP death, IC
/// failure, outer-ring packet loss/corruption, disk-cache stalls — that the
/// simulator arms before the first event fires. Because the simulator is a
/// pure discrete-event machine and the plan is data, every recovery path is
/// exactly reproducible from (plan, options): two runs with the same inputs
/// produce byte-identical MachineReports.
///
/// The fault model is fail-stop at packet boundaries (cf. the
/// operator-boundary restartability argument in the pipelining literature):
///   - a killed IP stops *accepting* packets at its kill tick; a unit whose
///     packet it had already accepted commits in full, so re-dispatch is
///     exactly-once by construction — a lost unit never started;
///   - a dropped assignment packet vanishes on the ring; the sending IC's
///     acknowledgement timeout notices and retransmits with exponential
///     backoff, up to max_retries, then fails the query cleanly;
///   - a corrupted assignment packet fails its checksum at the IP, which
///     NACKs it; the IC retransmits immediately (counted against the same
///     retry budget);
///   - a failed IC's instructions are re-homed by the MC to a surviving IC
///     whose local memory starts cold (re-fetches charged through the
///     storage hierarchy);
///   - a stalled disk-cache segment delays every cache access until the
///     stall window closes (pure degradation, nothing to recover).

#ifndef DFDB_MACHINE_FAULT_INJECTOR_H_
#define DFDB_MACHINE_FAULT_INJECTOR_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/sim_time.h"

namespace dfdb {

/// \brief The component faults the machine can be subjected to.
enum class FaultType {
  kKillIp,         ///< An instruction processor fail-stops at a tick.
  kFailIc,         ///< An instruction controller fail-stops at a tick.
  kDropPacket,     ///< Assignment packets vanish on the outer ring.
  kCorruptPacket,  ///< Assignment packets fail their checksum at the IP.
  kStallCache,     ///< A disk-cache segment stops serving for a window.
};

std::string_view FaultTypeToString(FaultType type);

/// \brief One scheduled fault.
struct FaultEvent {
  FaultType type = FaultType::kKillIp;
  /// When the fault arms. Component faults fire at this simulated time;
  /// packet faults affect the next \p count assignment packets inserted at
  /// or after it.
  SimTime at;
  /// IP/IC index for kKillIp/kFailIc; -1 picks targets round-robin over the
  /// machine's components in plan order.
  int target = -1;
  /// Packets affected (kDropPacket/kCorruptPacket). At least 1.
  uint64_t count = 1;
  /// Stall window length (kStallCache).
  SimTime duration = SimTime::Millis(20);
};

/// \brief A deterministic fault schedule plus the detection/retry knobs of
/// the recovery machinery.
struct FaultPlan {
  std::vector<FaultEvent> events;

  /// IC-side acknowledgement timeout: an assignment not accepted within
  /// this window of its expected arrival is declared lost and its IP
  /// suspect. Also the MC's status-poll period for dead-station detection.
  SimTime detection_timeout = SimTime::Millis(20);
  /// First retransmission backoff; doubles per attempt.
  SimTime retry_backoff = SimTime::Micros(500);
  /// Retransmissions per assignment before the query fails cleanly.
  int max_retries = 3;

  bool empty() const { return events.empty(); }

  /// \name Single-fault plan builders.
  /// @{
  static FaultPlan KillIp(int ip, SimTime at);
  static FaultPlan FailIc(int ic, SimTime at);
  static FaultPlan DropPackets(SimTime at, uint64_t count = 1);
  static FaultPlan CorruptPackets(SimTime at, uint64_t count = 1);
  static FaultPlan StallCache(SimTime at, SimTime duration);
  /// @}

  /// \brief A seeded random fault storm: \p ip_kills processor deaths and
  /// \p packet_faults ring faults spread deterministically over
  /// [0, horizon). Same seed, same storm — on every platform.
  static FaultPlan RandomStorm(uint64_t seed, int ip_kills, int packet_faults,
                               SimTime horizon);

  std::string ToString() const;
};

/// \brief Every recovery event, counted (lands in MachineReport::faults).
struct FaultStats {
  uint64_t injected = 0;           ///< Faults that actually fired.
  uint64_t ip_kills = 0;
  uint64_t ic_failures = 0;
  uint64_t packets_dropped = 0;
  uint64_t packets_corrupted = 0;
  uint64_t cache_stalls = 0;
  uint64_t timeouts = 0;           ///< IC acknowledgement timeouts.
  uint64_t retries = 0;            ///< Same-IP retransmissions.
  uint64_t redispatches = 0;       ///< Units re-dispatched to survivors.
  uint64_t instructions_rehomed = 0;  ///< Instructions moved off a dead IC.
  SimTime retry_ticks_lost;        ///< Simulated time burned in backoff.
  SimTime cache_stall_time;        ///< Total injected stall window.

  bool any() const { return injected > 0; }
  std::string ToString() const;
};

/// \brief Runtime driver owned by one simulation: arms the plan's packet
/// faults and decides the fate of each assignment packet on the outer ring.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan);

  bool active() const { return active_; }
  const FaultPlan& plan() const { return plan_; }

  enum class PacketFate { kDeliver, kDrop, kCorrupt };

  /// Consulted once per assignment packet inserted on the outer ring;
  /// consumes armed packet faults in schedule order and counts them.
  PacketFate OnAssignmentPacket(SimTime now, FaultStats* stats);

 private:
  struct ArmedPacketFault {
    FaultType type;
    SimTime at;
    uint64_t remaining;
  };

  FaultPlan plan_;
  bool active_ = false;
  std::vector<ArmedPacketFault> packet_faults_;
};

}  // namespace dfdb

#endif  // DFDB_MACHINE_FAULT_INJECTOR_H_

#include "machine/simulator.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/bitvector.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "engine/concurrency.h"
#include "index/access_path.h"
#include "machine/event_queue.h"
#include "machine/fault_injector.h"
#include "machine/packet.h"
#include "machine/resources.h"
#include "operators/aggregator.h"
#include "operators/dedup.h"
#include "obs/trace.h"
#include "operators/kernels.h"
#include "operators/set_ops.h"
#include "ra/expr_compile.h"
#include "storage/tuple.h"

namespace dfdb {

namespace {

// Analytic wire sizes, consistent with packet.cc (asserted in tests).
constexpr int64_t kInstrHeaderBytes = 48;
constexpr int64_t kPerOperandBytes = 16;     // name + tuple len + page len.
constexpr int64_t kPageHeaderBytes = 16;     // Serialized page header.
constexpr int64_t kControlBytes = 20;
constexpr int64_t kResultHeaderBytes = 20;   // ICid + len + name + page len.

int64_t OperandWire(int64_t payload) {
  return kPerOperandBytes + (payload > 0 ? kPageHeaderBytes + payload : 0);
}
int64_t UnaryPacketWire(int64_t payload) {
  return kInstrHeaderBytes + OperandWire(payload);
}
int64_t JoinPacketWire(int64_t outer_payload, int64_t inner_payload,
                       bool has_inner) {
  return kInstrHeaderBytes + OperandWire(outer_payload) +
         (has_inner ? OperandWire(inner_payload) : 0);
}
int64_t ResultPacketWire(int64_t payload) {
  return kResultHeaderBytes + (payload > 0 ? kPageHeaderBytes + payload : 0);
}

/// A page staged at an IC, identified for residency accounting.
struct StagedPage {
  PagePtr page;
  uint64_t uid = 0;
  /// Section 5.0 direct routing: the page was shipped straight to an IP
  /// and never entered the IC's memory; dispatching it needs only a
  /// header-only instruction packet.
  bool at_ip = false;
};

enum class InstrPhase { kWaiting, kRunning, kFlushing, kFinished };

struct OperandRt {
  std::vector<StagedPage> pages;
  bool complete = false;
  /// Streaming cursor: pages before this index have been assigned.
  size_t next_unassigned = 0;
  /// Compressor for repacking partial/mismatched pages into machine units.
  std::unique_ptr<Page> partial;
  uint64_t total_tuples = 0;
  /// Lazy compilation of a folded restrict (MachineOperand::filter), done
  /// at the first staged page like RunKernel's per-instruction cache.
  bool filter_tried = false;
  std::optional<CompiledPredicate> filter_pred;
  /// Near-data pushdown (PlanNode::pushdown on the staged scan): the
  /// compiled restrict runs at the disk-cache port during staging, so only
  /// surviving tuples cross into IC memory. Compiled once in StartStaging.
  std::optional<CompiledPredicate> pushdown_pred;
};

struct IpRt {
  int id = 0;
  SerialResource proc;
  int instr = -1;  ///< Owning instruction, -1 = in the MC pool.
  bool busy = false;
  bool flush_sent = false;
  std::unique_ptr<Page> result_buf;

  // Fault state. A dead IP stops accepting packets at its kill tick
  // (fail-stop at packet boundaries); `removed` flips once the MC has
  // detected the death and salvaged the IP's work.
  bool dead = false;
  bool removed = false;
  /// An assignment the controlling IC has inserted on the ring but the IP
  /// has not yet acknowledged. Cleared at acceptance; watchdog and retry
  /// events validate (id, attempts) against it, so stale timers no-op.
  struct PendingAssign {
    enum Kind { kUnary, kJoin, kFlush };
    uint64_t id = 0;
    Kind kind = kUnary;
    int attempts = 1;  ///< Transmissions so far (first send included).
    int slot = 0;                     ///< kUnary: operand slot.
    size_t unit_idx = 0;              ///< kUnary: unit; kJoin: outer page.
    std::optional<size_t> first_inner;  ///< kJoin: inner shipped along.
    int64_t wire = 0;                 ///< Ring bytes per transmission.
  };
  std::optional<PendingAssign> assign;

  // Join protocol state (Section 4.2).
  bool has_outer = false;
  StagedPage outer;
  size_t outer_idx = 0;
  BitVector irc;
  std::deque<size_t> pending_inner;  ///< Broadcast pages queued (cap 2).
  bool awaiting_request = false;     ///< Sent kRequestPage, no reply yet.
};

struct InstrRt {
  const MachineInstruction* def = nullptr;
  int ic = 0;
  InstrPhase phase = InstrPhase::kWaiting;
  std::vector<OperandRt> operands;
  std::vector<int> ips;
  bool request_outstanding = false;
  int outstanding_packets = 0;
  uint64_t outer_done = 0;
  int unflushed = 0;
  /// Arrival time of an in-flight broadcast per inner page (suppresses the
  /// paper's "subsequent requests ... received soon afterwards").
  std::vector<SimTime> inner_bcast_until;
  bool inner_complete_sent = false;
  /// Outer pages taken back from reclaimed IPs, with their join progress
  /// (IRC vector) preserved; re-dispatched before fresh outer pages.
  std::vector<std::pair<size_t, BitVector>> requeued_outers;
  /// Streaming units lost to a dead IP before it accepted them (slot,
  /// unit index); re-dispatched to survivors ahead of the stream cursor.
  /// Exactly-once by construction: a lost unit never started.
  std::deque<std::pair<int, size_t>> lost_units;
  /// Aggregate barrier: Finish() ran somewhere (guards re-flush after the
  /// barrier IP dies mid-flush, and the empty-ips flush path).
  bool agg_finished = false;

  /// Predicate compilation, done lazily at the first page this instruction
  /// executes and cached for the rest of the run. A refusal (nullopt after
  /// `compile_tried`) pins the instruction to the interpreted kernels.
  bool compile_tried = false;
  std::optional<CompiledPredicate> compiled_pred;
  std::optional<CompiledJoinPredicate> compiled_join;
  JoinScratch join_scratch;

  // Barrier-operator state.
  std::unique_ptr<Aggregator> agg;
  DuplicateEliminator dedup;
  DifferenceOp diff;
  uint64_t delete_matches = 0;
  /// Parallel project: one eliminator per hash partition (lives at the
  /// instruction so processor reassignment cannot lose it).
  std::vector<DuplicateEliminator> pp_partitions;
};

struct IcRt {
  int id = 0;
  LruPageSet local;
  IcRt(int id_, size_t capacity) : id(id_), local(capacity) {}
};

/// The whole machine for one Run() call.
class Sim {
 public:
  Sim(StorageEngine* storage, const MachineOptions& options,
      MachineProgram program, size_t num_queries)
      : storage_(storage),
        opt_(options),
        cfg_(options.config),
        prog_(std::move(program)),
        disk_cache_(static_cast<size_t>(cfg_.disk_cache_pages)),
        report_(),
        injector_(options.fault_plan),
        trace_(options.enable_trace) {
    report_.num_ips = cfg_.num_instruction_processors;
    report_.pipeline_fused_edges = prog_.pipeline.fused_edges;
    report_.pipeline_materialized_edges = prog_.pipeline.materialized_edges;
    report_.pipeline_runtime_fallbacks = prog_.pipeline.fallbacks;
    live_ips_ = cfg_.num_instruction_processors;
    live_ics_ = cfg_.num_instruction_controllers;
    ic_alive_.assign(static_cast<size_t>(cfg_.num_instruction_controllers), 1);
    report_.query_completion.assign(num_queries, SimTime::Zero());
    report_.results.resize(num_queries);
    query_snapshots_.resize(num_queries);
    drives_.resize(static_cast<size_t>(std::max(1, cfg_.num_disk_drives)));
    for (int i = 0; i < cfg_.num_instruction_controllers; ++i) {
      ics_.emplace_back(i, static_cast<size_t>(cfg_.ic_local_memory_pages));
    }
    for (int i = 0; i < cfg_.num_instruction_processors; ++i) {
      ips_.emplace_back();
      ips_.back().id = i;
      free_ips_.push_back(i);
    }
    instrs_.resize(prog_.instructions.size());
    for (size_t i = 0; i < prog_.instructions.size(); ++i) {
      instrs_[i].def = &prog_.instructions[i];
      instrs_[i].ic = static_cast<int>(i) % cfg_.num_instruction_controllers;
      instrs_[i].operands.resize(prog_.instructions[i].operands.size());
      InitBarrierState(&instrs_[i]);
    }
  }

  Status Run();
  MachineReport&& TakeReport() { return std::move(report_); }

 private:
  // ---- helpers -----------------------------------------------------------
  int MachineUnitBytes(const Schema& schema) const {
    const int width = std::max(1, schema.tuple_width());
    return opt_.granularity == Granularity::kTuple
               ? width
               : std::max(cfg_.page_bytes, width);
  }

  void Fail(const Status& s) {
    if (error_.ok()) error_ = s;
  }

  void InitBarrierState(InstrRt* ir) {
    const MachineInstruction& def = *ir->def;
    if (def.op == PlanOp::kAggregate) {
      auto agg = Aggregator::Create(def.operands[0].schema, def.output_schema,
                                    def.node->columns, def.node->aggregates);
      if (!agg.ok()) {
        Fail(agg.status());
        return;
      }
      ir->agg = std::make_unique<Aggregator>(*std::move(agg));
    }
  }

  /// Arrival time of an outer-ring message of \p bytes.
  SimTime SendOuter(int64_t bytes) {
    report_.bytes.outer_ring += static_cast<uint64_t>(bytes);
    const SimTime done =
        outer_ring_.Acquire(eq_.now(), cfg_.outer_ring.InsertionTime(bytes));
    const int stations =
        cfg_.num_instruction_controllers + cfg_.num_instruction_processors;
    return done + cfg_.outer_ring.PropagationTime(stations);
  }

  /// Arrival time of an inner-ring (control) message.
  SimTime SendInner(int64_t bytes) {
    report_.bytes.inner_ring += static_cast<uint64_t>(bytes);
    const SimTime done =
        inner_ring_.Acquire(eq_.now(), cfg_.inner_ring.InsertionTime(bytes));
    return done + cfg_.inner_ring.PropagationTime(
                      cfg_.num_instruction_controllers + 1) +
           kMcProcessing;
  }

  SerialResource& DriveFor(uint64_t uid) {
    return drives_[uid % drives_.size()];
  }

  int64_t BytesOf(uint64_t uid) const {
    auto it = page_sizes_.find(uid);
    return it != page_sizes_.end() ? it->second
                                   : static_cast<int64_t>(cfg_.page_bytes);
  }

  /// Makes \p uid resident in the disk-cache level; victims displaced from
  /// the cache are written back to a disk drive (time and bytes).
  void SpillToCache(uint64_t uid) {
    std::vector<uint64_t> evicted;
    disk_cache_.InsertEvict(uid, &evicted);
    for (uint64_t v : evicted) {
      const int64_t b = BytesOf(v);
      report_.bytes.disk_write += static_cast<uint64_t>(b);
      DriveFor(v).Acquire(eq_.now(), cfg_.disk.SequentialTime(b));
    }
  }

  /// Inserts \p uid into \p ic's local memory, spilling LRU victims to the
  /// disk cache ("the IC will write the least desirable pages to its
  /// segment of the multiport disk cache", Section 4.1).
  void InsertLocal(IcRt* ic, uint64_t uid, int64_t bytes) {
    page_sizes_.emplace(uid, bytes);
    std::vector<uint64_t> evicted;
    ic->local.InsertEvict(uid, &evicted);
    for (uint64_t v : evicted) {
      report_.bytes.ic_to_cache += static_cast<uint64_t>(BytesOf(v));
      SpillToCache(v);
    }
  }

  /// Makes page \p uid resident in \p ic's local memory, walking down the
  /// hierarchy as needed: local hit is free; a disk-cache hit pays one
  /// cache access; a full miss pays a disk access (with drive contention)
  /// plus the cache transfer.
  SimTime EnsureLocal(IcRt* ic, uint64_t uid, int64_t bytes) {
    if (ic->local.Touch(uid)) return SimTime::Zero();
    SimTime delay = CacheStallPenalty();
    if (disk_cache_.Touch(uid)) {
      report_.bytes.cache_to_ic += static_cast<uint64_t>(bytes);
      delay += cfg_.cache.AccessTime(bytes);
    } else {
      const SimTime done =
          DriveFor(uid).Acquire(eq_.now(), cfg_.disk.AccessTime(bytes));
      report_.bytes.disk_read += static_cast<uint64_t>(bytes);
      SpillToCache(uid);
      report_.bytes.cache_to_ic += static_cast<uint64_t>(bytes);
      delay += (done - eq_.now()) + cfg_.cache.AccessTime(bytes);
    }
    InsertLocal(ic, uid, bytes);
    return delay;
  }

  uint64_t NextUid() { return next_uid_++; }

  // ---- lifecycle ---------------------------------------------------------
  void SubmitAll();
  void TryAdmitWaiting();
  void StartQuery(size_t qi);
  void StartStaging(int instr_id, int slot);
  void StageNextRawPage(int instr_id, int slot,
                        std::shared_ptr<std::vector<PageId>> ids, size_t idx);
  void RepackInto(int instr_id, int slot, const Page& raw);
  void FlushPartialOperand(int instr_id, int slot);
  void DeliverOperandPage(int instr_id, int slot, StagedPage staged);
  void CompleteOperand(int instr_id, int slot);
  void TryStart(int instr_id);
  void RequestIps(int instr_id);
  void HandleIpRequestAtMc(int instr_id);
  void GrantArrive(int instr_id, int count);
  void ReleaseIdleIp(int instr_id, int ip_id);
  void ReleaseAllIps(int instr_id);
  void PumpPendingRequests();
  void ReclaimIdleIps();

  void DispatchWork(int instr_id);
  std::optional<std::pair<int, size_t>> NextStreamPage(InstrRt* ir);

  /// Diagnostic dump of every unfinished instruction (stall debugging).
  std::string DebugStates() const {
    std::string out;
    for (size_t i = 0; i < instrs_.size(); ++i) {
      const InstrRt& ir = instrs_[i];
      if (ir.phase == InstrPhase::kFinished) continue;
      out += StrFormat(
          "instr %zu q%llu op=%s phase=%d ips=%zu outstanding=%d "
          "outer_done=%llu req_out=%d unflushed=%d |",
          i, static_cast<unsigned long long>(ir.def->query_id),
          std::string(PlanOpToString(ir.def->op)).c_str(),
          static_cast<int>(ir.phase), ir.ips.size(), ir.outstanding_packets,
          static_cast<unsigned long long>(ir.outer_done),
          ir.request_outstanding ? 1 : 0, ir.unflushed);
      for (const OperandRt& op : ir.operands) {
        out += StrFormat(" [pages=%zu next=%zu complete=%d]", op.pages.size(),
                         op.next_unassigned, op.complete ? 1 : 0);
      }
      for (int ip_id : ir.ips) {
        const IpRt& ip = ips_[static_cast<size_t>(ip_id)];
        out += StrFormat(" ip%d{busy=%d outer=%d irc=%zu/%zu wait=%d}", ip_id,
                         ip.busy ? 1 : 0, ip.has_outer ? 1 : 0,
                         ip.irc.Count(), ip.irc.size(),
                         ip.awaiting_request ? 1 : 0);
      }
      out += "\n";
    }
    out += StrFormat("free_ips=%zu pending_requests=%zu\n", free_ips_.size(),
                     pending_requests_.size());
    return out;
  }

  /// Section 5.0: is this instruction the parallel dedup-project?
  bool IsParallelProject(const InstrRt& ir) const {
    return opt_.parallel_project && ir.def->op == PlanOp::kProject &&
           ir.def->node->dedup;
  }

  /// Barrier semantics apply unless the parallel-project option lifts them.
  bool IsBarrier(const InstrRt& ir) const {
    return ir.def->barrier && !IsParallelProject(ir);
  }

  /// Hash-partition fan-out of one instruction (1 for everything except
  /// the parallel project).
  int PartitionsOf(const InstrRt& ir) const {
    if (!IsParallelProject(ir)) return 1;
    return std::max(1, std::min(opt_.project_partitions,
                                cfg_.num_instruction_processors));
  }

  /// Streaming work units of one operand: pages, times partitions (each
  /// parallel-project page is processed once per partition).
  size_t StreamUnits(const InstrRt& ir, const OperandRt& op) const {
    return op.pages.size() * static_cast<size_t>(PartitionsOf(ir));
  }

  /// True if NextStreamPage would return a unit (no cursor movement).
  bool HasStreamWork(const InstrRt& ir) const {
    if (!ir.lost_units.empty()) return true;
    for (size_t slot = 0; slot < ir.operands.size(); ++slot) {
      const OperandRt& op = ir.operands[slot];
      if (op.next_unassigned < StreamUnits(ir, op)) return true;
    }
    return false;
  }

  void SendUnaryPacket(int instr_id, int ip_id, int slot, size_t page_idx);
  void IpUnaryArrive(int instr_id, int ip_id, int slot, size_t page_idx);
  void IpUnaryDone(int instr_id, int ip_id, std::vector<PagePtr> full_pages);

  void SendJoinAssign(int instr_id, int ip_id, size_t outer_idx,
                      const BitVector* resume_irc = nullptr);
  void IpJoinAssignArrive(int instr_id, int ip_id, size_t outer_idx,
                          std::optional<size_t> inner_idx);
  void IpStartJoinStep(int instr_id, int ip_id, size_t inner_idx);
  void IpJoinStepDone(int instr_id, int ip_id, size_t inner_idx,
                      std::vector<PagePtr> full_pages);
  void IpJoinAdvance(int instr_id, int ip_id);
  void IpOuterDone(int instr_id, int ip_id);
  void IcHandlePageRequest(int instr_id, size_t inner_idx);

  /// A directly routed outer page taken back from a reclaimed IP returns
  /// to the IC's custody (it can no longer be assumed resident at an IP).
  void NormalizeRequeuedOuter(InstrRt* ir, size_t outer_idx) {
    StagedPage& sp = ir->operands[0].pages[outer_idx];
    if (sp.at_ip) {
      sp.at_ip = false;
      InsertLocal(&ics_[static_cast<size_t>(ir->ic)], sp.uid,
                  sp.page->payload_bytes());
    }
  }
  void BroadcastInner(int instr_id, size_t inner_idx);
  void NotifyInnerComplete(int instr_id);

  void SendResultPage(int instr_id, PagePtr page);
  void DeliverResult(int producer_instr, PagePtr page);

  void MaybeFlush(int instr_id);
  void SendFlush(int instr_id, int ip_id);
  void IpFlushArrive(int instr_id, int ip_id);
  void FinishInstr(int instr_id);

  // ---- fault injection and recovery --------------------------------------
  // Section 4's case for distributed instruction control is graceful
  // degradation; these paths make that argument executable. Fault-free
  // runs (empty plan) take the exact same event sequence: the assignment
  // bookkeeping is free and acknowledgements/watchdogs are only armed
  // when a plan is present.
  void ArmFaults();
  void TransmitAssignment(int instr_id, int ip_id, uint64_t assign_id);
  void AssignmentArrive(int instr_id, int ip_id, uint64_t assign_id);
  void AssignmentTimeout(int instr_id, int ip_id, uint64_t assign_id,
                         int attempt);
  void RetryAssignment(int instr_id, int ip_id, uint64_t assign_id,
                       int attempt);
  void KillIp(int ip_id);
  void DeclareIpDead(int ip_id);
  void FailIc(int ic_id);
  void RehomeIc(int ic_id);
  void InjectCacheStall(SimTime duration);
  /// Extra latency on disk-cache accesses while a stall window is open.
  SimTime CacheStallPenalty() const {
    return cache_stall_until_ > eq_.now() ? cache_stall_until_ - eq_.now()
                                          : SimTime::Zero();
  }

  // Kernel execution: runs the operator on \p in (and \p inner for joins),
  // appending output tuples to the IP's result buffer; returns the full
  // result pages produced and the output byte count.
  StatusOr<std::pair<std::vector<PagePtr>, int64_t>> RunKernel(
      InstrRt* ir, IpRt* ip, int slot, const Page& in, const Page* inner,
      int partition = 0);
  std::vector<PagePtr> DrainFullResultPages(InstrRt* ir, IpRt* ip,
                                            bool flush_partial);
  Status AppendResultTuple(InstrRt* ir, IpRt* ip, Slice tuple,
                           std::vector<PagePtr>* full);
  Status AppendResultTupleParts(InstrRt* ir, IpRt* ip, const Slice* parts,
                                size_t n, std::vector<PagePtr>* full);

  // ---- state -------------------------------------------------------------
  static constexpr SimTime kMcProcessing = SimTime::Micros(50);

  StorageEngine* storage_;
  MachineOptions opt_;
  MachineConfig cfg_;
  MachineProgram prog_;

  EventQueue eq_;
  SerialResource outer_ring_;
  SerialResource inner_ring_;
  std::vector<SerialResource> drives_;
  LruPageSet disk_cache_;
  std::vector<IcRt> ics_;
  std::vector<IpRt> ips_;
  std::vector<InstrRt> instrs_;
  std::deque<int> free_ips_;
  std::deque<int> pending_requests_;
  ConflictManager conflicts_;
  std::deque<size_t> waiting_queries_;
  /// One storage snapshot per query, captured at admission and released at
  /// completion: base-operand staging reads the same immutable page set the
  /// threads engine would, regardless of concurrent writers.
  std::vector<Snapshot> query_snapshots_;
  size_t active_queries_ = 0;
  bool in_reclaim_ = false;
  /// Byte size per page uid (raw PageIds and staged uids share the space).
  std::unordered_map<uint64_t, int64_t> page_sizes_;

  MachineReport report_;
  Status error_;
  uint64_t next_uid_ = 1ull << 40;
  /// Compiled-vs-interpreted kernel outcomes across all IPs (single driver
  /// thread; snapshotted into the report at the end of the run).
  KernelStats kernel_stats_;

  // Fault machinery.
  FaultInjector injector_;
  int live_ips_ = 0;
  int live_ics_ = 0;
  std::vector<char> ic_alive_;
  SimTime cache_stall_until_;
  uint64_t next_assign_id_ = 1;

  // Observability. Records in event order from the single driver thread at
  // sim-time timestamps, so the trace is bit-for-bit reproducible.
  obs::TraceRecorder trace_;

  /// Records one trace event; `instr_id < 0` means "no instruction" (query
  /// resolves to 0). \p station is the IP or IC involved, -1 if none.
  void Tr(obs::TraceEventKind kind, int instr_id, int station, int64_t bytes,
          const char* detail) {
    if (!trace_.enabled()) return;
    const uint64_t query =
        instr_id >= 0
            ? static_cast<uint64_t>(
                  instrs_[static_cast<size_t>(instr_id)].def->query_index)
            : 0;
    trace_.Record(kind, query, instr_id, station,
                  bytes > 0 ? static_cast<uint64_t>(bytes) : 0, detail,
                  eq_.now().nanos());
  }
};

// ---------------------------------------------------------------------------
// Submission and admission
// ---------------------------------------------------------------------------

void Sim::SubmitAll() {
  for (size_t qi = 0; qi < prog_.roots.size(); ++qi) {
    waiting_queries_.push_back(qi);
  }
  TryAdmitWaiting();
}

void Sim::TryAdmitWaiting() {
  for (auto it = waiting_queries_.begin(); it != waiting_queries_.end();) {
    const size_t qi = *it;
    const QueryAnalysis& analysis = prog_.analyses[qi];
    if (conflicts_.TryAdmit(qi + 1, analysis.read_set, analysis.write_set)) {
      ++active_queries_;
      it = waiting_queries_.erase(it);
      // Publish any committed-state debt (direct host appends) on the
      // relations this query touches, then stamp its snapshot. Safe to
      // commit here: the ConflictManager just granted this query exclusive
      // access against writers of everything in its sets.
      for (const std::string& rel : analysis.read_set) {
        (void)storage_->CommitRelation(rel);
      }
      for (const std::string& rel : analysis.write_set) {
        (void)storage_->CommitRelation(rel);
      }
      query_snapshots_[qi] = storage_->CaptureSnapshot();
      StartQuery(qi);
    } else {
      ++it;
    }
  }
}

void Sim::StartQuery(size_t qi) {
  // The MC distributes the query's instructions to the ICs over the inner
  // ring (small control messages).
  for (size_t i = 0; i < prog_.instructions.size(); ++i) {
    if (prog_.instructions[i].query_index != qi) continue;
    const SimTime arrival = SendInner(kControlBytes * 2);
    report_.control_packets++;
    const int id = static_cast<int>(i);
    eq_.ScheduleAt(arrival, [this, id] {
      InstrRt& ir = instrs_[static_cast<size_t>(id)];
      for (size_t slot = 0; slot < ir.def->operands.size(); ++slot) {
        if (ir.def->operands[slot].is_base) {
          StartStaging(id, static_cast<int>(slot));
        }
      }
      TryStart(id);
    });
  }
}

// ---------------------------------------------------------------------------
// Base-operand staging through the storage hierarchy
// ---------------------------------------------------------------------------

void Sim::StartStaging(int instr_id, int slot) {
  InstrRt& ir = instrs_[static_cast<size_t>(instr_id)];
  const MachineOperand& mop = ir.def->operands[static_cast<size_t>(slot)];
  const std::string& rel = mop.base_relation;
  // The plan scan node this operand stages (carries the optimizer's
  // access-path mark). A folded restrict points at it through the operand
  // filter; otherwise the instruction's own child in this slot is the scan.
  const PlanNode* scan = nullptr;
  if (opt_.index == IndexPolicy::kHonorPlan) {
    if (mop.filter != nullptr) {
      if (mop.filter->num_children() == 1 &&
          mop.filter->child(0).op == PlanOp::kScan) {
        scan = &mop.filter->child(0);
      }
    } else if (ir.def->node != nullptr &&
               slot < ir.def->node->num_children() &&
               ir.def->node->child(slot).op == PlanOp::kScan) {
      scan = &ir.def->node->child(slot);
    }
    if (scan != nullptr && scan->access_path == ScanAccessPath::kFullScan) {
      scan = nullptr;
    }
  }
  // Near-data pushdown: when the optimizer marked this scan pushable and
  // the policy honors it, compile the consuming restrict's predicate
  // against the scan schema. Staging then filters at the cache port —
  // composing with the access-path marks above: pruning drops whole pages
  // first, pushdown filters the residual pages' tuples.
  if (opt_.pushdown == PushdownPolicy::kHonorPlan) {
    const PlanNode* restrict_node = nullptr;
    if (mop.filter != nullptr) {
      if (mop.filter->num_children() == 1 &&
          mop.filter->child(0).op == PlanOp::kScan &&
          mop.filter->child(0).pushdown) {
        restrict_node = mop.filter;
      }
    } else if (ir.def->node != nullptr &&
               ir.def->node->op == PlanOp::kRestrict &&
               ir.def->node->predicate != nullptr &&
               slot < ir.def->node->num_children() &&
               ir.def->node->child(slot).op == PlanOp::kScan &&
               ir.def->node->child(slot).pushdown) {
      restrict_node = ir.def->node;
    }
    if (restrict_node != nullptr) {
      auto compiled =
          CompiledPredicate::Compile(*restrict_node->predicate, mop.schema);
      if (compiled.ok()) {
        ir.operands[static_cast<size_t>(slot)].pushdown_pred.emplace(
            *std::move(compiled));
      } else {
        report_.pushdown.fallbacks++;
      }
    }
  }
  const Snapshot& snap = query_snapshots_[ir.def->query_index];
  if (snap.valid()) {
    auto view = snap.View(rel);
    if (!view.ok()) {
      Fail(view.status().WithContext("staging snapshot view " + rel));
      CompleteOperand(instr_id, slot);
      return;
    }
    const uint64_t commit_ts = view->commit_ts;
    auto ids = std::make_shared<std::vector<PageId>>(std::move(view->pages));
    if (scan != nullptr) {
      *ids = PruneScanPages(storage_, *scan, *ids, commit_ts,
                            /*allow_gridfile=*/true, &report_.index);
    }
    StageNextRawPage(instr_id, slot, ids, 0);
    return;
  }
  // Fallback (no snapshot stamped): read the live head. Grid-file probes
  // need a version timestamp to cache against, so only zone maps apply.
  auto file = storage_->GetHeapFile(rel);
  if (!file.ok()) {
    Fail(file.status().WithContext("staging " + rel));
    CompleteOperand(instr_id, slot);
    return;
  }
  Status flushed = (*file)->Flush();
  if (!flushed.ok()) Fail(flushed);
  auto ids = std::make_shared<std::vector<PageId>>((*file)->PageIds());
  if (scan != nullptr) {
    *ids = PruneScanPages(storage_, *scan, *ids, /*view_commit_ts=*/0,
                          /*allow_gridfile=*/false, &report_.index);
  }
  StageNextRawPage(instr_id, slot, ids, 0);
}

void Sim::StageNextRawPage(int instr_id, int slot,
                           std::shared_ptr<std::vector<PageId>> ids,
                           size_t idx) {
  if (idx >= ids->size()) {
    CompleteOperand(instr_id, slot);
    return;
  }
  const PageId raw_id = (*ids)[idx];
  auto raw = storage_->page_store().Get(raw_id);
  if (!raw.ok()) {
    Fail(raw.status().WithContext("staging read"));
    CompleteOperand(instr_id, slot);
    return;
  }
  const int64_t bytes = (*raw)->payload_bytes();
  page_sizes_.emplace(raw_id, bytes);
  PagePtr page = *std::move(raw);
  // Near-data pushdown: the compiled restrict runs at the cache port. The
  // filter logic streams the whole page, but only survivors cross into IC
  // memory, so the transfer (and everything downstream — repacked units,
  // ring packets) is charged for surviving bytes only.
  InstrRt& ir = instrs_[static_cast<size_t>(instr_id)];
  OperandRt& op = ir.operands[static_cast<size_t>(slot)];
  const bool pushed = op.pushdown_pred.has_value();
  int64_t transfer = bytes;
  if (pushed) {
    const Schema& schema =
        ir.def->operands[static_cast<size_t>(slot)].schema;
    const int width = std::max(1, schema.tuple_width());
    auto survivors =
        Page::Create(0, width, std::max(static_cast<int>(bytes), width));
    if (!survivors.ok()) {
      Fail(survivors.status().WithContext("pushdown staging"));
      CompleteOperand(instr_id, slot);
      return;
    }
    const int in = page->num_tuples();
    for (int i = 0; i < in; ++i) {
      if (!op.pushdown_pred->Matches(page->tuple(i).data(), nullptr)) continue;
      Status s = survivors->Append(page->tuple(i));
      if (!s.ok()) {
        Fail(s.WithContext("pushdown staging"));
        CompleteOperand(instr_id, slot);
        return;
      }
    }
    page = SealPage(*std::move(survivors));
    transfer = page->payload_bytes();
    report_.pushdown.pages_filtered++;
    report_.pushdown.tuples_in += static_cast<uint64_t>(in);
    report_.pushdown.tuples_out += static_cast<uint64_t>(page->num_tuples());
    report_.pushdown.bytes_elided += static_cast<uint64_t>(bytes - transfer);
  }
  SimTime arrival;
  if (disk_cache_.Touch(raw_id)) {
    // Disk-cache hit: only the cache -> IC transfer.
    report_.bytes.cache_to_ic += static_cast<uint64_t>(transfer);
    arrival = eq_.now() +
              (pushed ? cfg_.cache.FilteredAccessTime(bytes, transfer)
                      : cfg_.cache.AccessTime(bytes)) +
              CacheStallPenalty();
  } else {
    // Read from a drive into the cache, then to the IC. Positioning is
    // charged on the first page of a run and every 10th page thereafter
    // (cylinder crossings); intermediate pages stream sequentially. Drives
    // have no filter logic, so the full page always crosses disk -> cache.
    const std::string& rel =
        ir.def->operands[static_cast<size_t>(slot)].base_relation;
    SerialResource& drive =
        drives_[Hash64(rel.data(), rel.size()) % drives_.size()];
    const bool position = (idx % 10) == 0;
    const SimTime service =
        position ? cfg_.disk.AccessTime(bytes) : cfg_.disk.SequentialTime(bytes);
    const SimTime disk_done = drive.Acquire(eq_.now(), service);
    report_.bytes.disk_read += static_cast<uint64_t>(bytes);
    SpillToCache(raw_id);
    report_.bytes.cache_to_ic += static_cast<uint64_t>(transfer);
    arrival = disk_done +
              (pushed ? cfg_.cache.FilteredAccessTime(bytes, transfer)
                      : cfg_.cache.AccessTime(bytes)) +
              CacheStallPenalty();
  }
  eq_.ScheduleAt(arrival, [this, instr_id, slot, ids, idx, page] {
    RepackInto(instr_id, slot, *page);
    StageNextRawPage(instr_id, slot, ids, idx + 1);
  });
}

void Sim::RepackInto(int instr_id, int slot, const Page& raw) {
  InstrRt& ir = instrs_[static_cast<size_t>(instr_id)];
  OperandRt& op = ir.operands[static_cast<size_t>(slot)];
  const MachineOperand& mop = ir.def->operands[static_cast<size_t>(slot)];
  const Schema& schema = mop.schema;
  const int unit = MachineUnitBytes(schema);
  // A folded restrict filters here, while the IC compacts staged tuples
  // into machine units: the consumer sees the same filtered operand stream
  // it would get from a restrict instruction, minus that instruction's IP
  // occupancy and ring crossings.
  if (mop.filter != nullptr) {
    if (!op.filter_tried) {
      op.filter_tried = true;
      auto compiled =
          CompiledPredicate::Compile(*mop.filter->predicate, schema);
      if (compiled.ok()) op.filter_pred.emplace(*std::move(compiled));
    }
    report_.pipeline_fused_pages++;
  }
  for (int i = 0; i < raw.num_tuples(); ++i) {
    if (mop.filter != nullptr) {
      if (op.filter_pred.has_value()) {
        if (!op.filter_pred->Matches(raw.tuple(i).data(), nullptr)) continue;
      } else {
        TupleView view(&schema, raw.tuple(i));
        auto keep = mop.filter->predicate->EvalBool(view, nullptr);
        if (!keep.ok()) {
          Fail(keep.status());
          return;
        }
        if (!*keep) continue;
      }
    }
    if (op.partial == nullptr) {
      auto page = Page::Create(0, schema.tuple_width(), unit);
      if (!page.ok()) {
        Fail(page.status());
        return;
      }
      op.partial = std::make_unique<Page>(*std::move(page));
    }
    Status s = op.partial->Append(raw.tuple(i));
    if (!s.ok()) {
      Fail(s);
      return;
    }
    op.total_tuples++;
    if (op.partial->full()) {
      StagedPage staged{SealPage(std::move(*op.partial)), NextUid()};
      op.partial.reset();
      DeliverOperandPage(instr_id, slot, std::move(staged));
    }
  }
}

void Sim::FlushPartialOperand(int instr_id, int slot) {
  InstrRt& ir = instrs_[static_cast<size_t>(instr_id)];
  OperandRt& op = ir.operands[static_cast<size_t>(slot)];
  if (op.partial != nullptr && !op.partial->empty()) {
    StagedPage staged{SealPage(std::move(*op.partial)), NextUid()};
    op.partial.reset();
    DeliverOperandPage(instr_id, slot, std::move(staged));
  }
  op.partial.reset();
}

void Sim::DeliverOperandPage(int instr_id, int slot, StagedPage staged) {
  InstrRt& ir = instrs_[static_cast<size_t>(instr_id)];
  OperandRt& op = ir.operands[static_cast<size_t>(slot)];
  if (ir.def->operands[static_cast<size_t>(slot)].filter != nullptr) {
    // This unit arrived pre-filtered: the folded restrict would have built,
    // shipped, and repacked an equivalent intermediate page.
    report_.pipeline_pages_elided++;
  }
  InsertLocal(&ics_[static_cast<size_t>(ir.ic)], staged.uid,
              staged.page->payload_bytes());
  op.pages.push_back(std::move(staged));
  if (ir.phase == InstrPhase::kWaiting) {
    TryStart(instr_id);
  } else if (ir.phase == InstrPhase::kRunning) {
    if (ir.def->op == PlanOp::kJoin && slot == 1) {
      BroadcastInner(instr_id, op.pages.size() - 1);
    }
    DispatchWork(instr_id);
  }
}

void Sim::CompleteOperand(int instr_id, int slot) {
  FlushPartialOperand(instr_id, slot);
  InstrRt& ir = instrs_[static_cast<size_t>(instr_id)];
  ir.operands[static_cast<size_t>(slot)].complete = true;
  if (ir.phase == InstrPhase::kWaiting) {
    TryStart(instr_id);
  } else if (ir.phase == InstrPhase::kRunning) {
    if (ir.def->op == PlanOp::kJoin && slot == 1) {
      NotifyInnerComplete(instr_id);
    }
    DispatchWork(instr_id);
    MaybeFlush(instr_id);
  }
}

// ---------------------------------------------------------------------------
// Enablement and IP allocation
// ---------------------------------------------------------------------------

void Sim::TryStart(int instr_id) {
  InstrRt& ir = instrs_[static_cast<size_t>(instr_id)];
  if (ir.phase != InstrPhase::kWaiting) return;
  const bool relation_mode =
      opt_.granularity == Granularity::kRelation || IsBarrier(ir);
  for (const OperandRt& op : ir.operands) {
    if (relation_mode) {
      if (!op.complete) return;
    } else {
      // Page (and tuple) granularity: "as soon as at least one page of each
      // participating relation(s) exists" (Section 3.2).
      if (op.pages.empty() && !op.complete) return;
    }
  }
  ir.phase = InstrPhase::kRunning;
  RequestIps(instr_id);
}

void Sim::RequestIps(int instr_id) {
  InstrRt& ir = instrs_[static_cast<size_t>(instr_id)];
  if (ir.request_outstanding || ir.phase != InstrPhase::kRunning) return;
  ir.request_outstanding = true;
  report_.control_packets++;
  const SimTime arrival = SendInner(kControlBytes);
  eq_.ScheduleAt(arrival, [this, instr_id] { HandleIpRequestAtMc(instr_id); });
}

void Sim::HandleIpRequestAtMc(int instr_id) {
  InstrRt& ir = instrs_[static_cast<size_t>(instr_id)];
  if (ir.phase == InstrPhase::kFinished) {
    ir.request_outstanding = false;
    return;
  }
  // Fair share: "insuring that processors are distributed across all nodes
  // in the query tree" (Section 4.1). The policy is work-conserving: an
  // instruction above its share may still claim one processor from an
  // otherwise idle pool.
  int active = 0;
  for (const InstrRt& other : instrs_) {
    if (other.phase == InstrPhase::kRunning ||
        other.phase == InstrPhase::kFlushing) {
      ++active;
    }
  }
  const int share = std::max(
      1, cfg_.num_instruction_processors / std::max(1, active));
  int desired = 0;
  if (ir.def->op == PlanOp::kJoin) {
    desired = static_cast<int>(ir.operands[0].pages.size() -
                               ir.operands[0].next_unassigned +
                               ir.requeued_outers.size());
  } else {
    for (const OperandRt& op : ir.operands) {
      desired += static_cast<int>(StreamUnits(ir, op) - op.next_unassigned);
    }
    desired += static_cast<int>(ir.lost_units.size());
  }
  desired = std::max(desired, 1);
  if (IsBarrier(ir)) desired = 1;
  if (IsParallelProject(ir)) desired = std::min(desired, PartitionsOf(ir));
  const int have = static_cast<int>(ir.ips.size());
  int want = std::min(desired, std::max(1, share - have));
  if (IsBarrier(ir) && have >= 1) want = 0;
  int granted = 0;
  std::vector<int> grant;
  while (granted < want && !free_ips_.empty()) {
    grant.push_back(free_ips_.front());
    free_ips_.pop_front();
    ++granted;
  }
  if (granted == 0 && want == 0) {
    ir.request_outstanding = false;
    DispatchWork(instr_id);
    MaybeFlush(instr_id);
    return;
  }
  if (granted == 0) {
    // "When another instruction has terminated, the MC will send the
    // remaining requested resources to the IC." Additionally, the MC
    // reclaims processors idling at instructions whose operand streams
    // have momentarily run dry, so a starved request cannot deadlock
    // against held-but-idle processors.
    pending_requests_.push_back(instr_id);
    ReclaimIdleIps();
    return;
  }
  // Bind the processors immediately so the pool stays consistent; the IC
  // only uses them once the grant message arrives.
  for (int ip : grant) {
    ips_[static_cast<size_t>(ip)].instr = instr_id;
    ips_[static_cast<size_t>(ip)].flush_sent = false;
    ir.ips.push_back(ip);
    Tr(obs::TraceEventKind::kTaskClaimed, instr_id, ip, 0, "ip-grant");
  }
  report_.control_packets++;
  const SimTime arrival = SendInner(kControlBytes);
  eq_.ScheduleAt(arrival, [this, instr_id, n = grant.size()] {
    GrantArrive(instr_id, static_cast<int>(n));
  });
}

void Sim::GrantArrive(int instr_id, int count) {
  (void)count;
  InstrRt& ir = instrs_[static_cast<size_t>(instr_id)];
  ir.request_outstanding = false;
  if (ir.phase == InstrPhase::kFinished) return;
  DispatchWork(instr_id);
  MaybeFlush(instr_id);
}

void Sim::ReleaseIdleIp(int instr_id, int ip_id) {
  InstrRt& ir = instrs_[static_cast<size_t>(instr_id)];
  auto it = std::find(ir.ips.begin(), ir.ips.end(), ip_id);
  if (it == ir.ips.end()) return;
  IpRt& ip = ips_[static_cast<size_t>(ip_id)];
  // Ship any buffered partial result before the IP changes hands.
  for (PagePtr& page : DrainFullResultPages(&ir, &ip, /*flush_partial=*/true)) {
    SendResultPage(instr_id, std::move(page));
  }
  ir.ips.erase(it);
  ip.instr = -1;
  ip.result_buf.reset();
  free_ips_.push_back(ip_id);
  report_.control_packets++;
  (void)SendInner(kControlBytes);  // Release message to the MC.
  PumpPendingRequests();
}

void Sim::ReleaseAllIps(int instr_id) {
  InstrRt& ir = instrs_[static_cast<size_t>(instr_id)];
  for (int ip_id : ir.ips) {
    IpRt& ip = ips_[static_cast<size_t>(ip_id)];
    ip.instr = -1;
    ip.result_buf.reset();
    ip.has_outer = false;
    ip.irc.Resize(0);
    ip.pending_inner.clear();
    free_ips_.push_back(ip_id);
  }
  if (!ir.ips.empty()) {
    report_.control_packets++;
    (void)SendInner(kControlBytes);
  }
  ir.ips.clear();
  PumpPendingRequests();
}

void Sim::PumpPendingRequests() {
  // Serve queued IP requests now that processors freed up.
  std::deque<int> pending;
  pending.swap(pending_requests_);
  for (int instr_id : pending) {
    HandleIpRequestAtMc(instr_id);
  }
}

void Sim::ReclaimIdleIps() {
  if (in_reclaim_) return;
  in_reclaim_ = true;
  for (size_t i = 0; i < instrs_.size(); ++i) {
    InstrRt& ir = instrs_[i];
    if (ir.phase != InstrPhase::kRunning) continue;
    const bool is_join = ir.def->op == PlanOp::kJoin;
    const bool has_work =
        is_join
            ? (ir.operands[0].next_unassigned < ir.operands[0].pages.size() ||
               !ir.requeued_outers.empty())
            : HasStreamWork(ir);
    std::vector<int> idle;
    for (int ip_id : ir.ips) {
      IpRt& ip = ips_[static_cast<size_t>(ip_id)];
      if (ip.busy || ip.flush_sent) continue;
      if (is_join && ip.has_outer) {
        // A join IP stuck mid-outer (every staged inner page already
        // joined, inner relation incomplete) is reclaimed regardless of
        // other pending outer work: it cannot progress until the inner
        // producer runs, and the producer may be the starved requester.
        // Its outer page and IRC progress are stashed and resumed later.
        const OperandRt& inner = ir.operands[1];
        if (!inner.complete && ip.pending_inner.empty() &&
            ip.irc.size() >= inner.pages.size() &&
            ip.irc.Count() >= inner.pages.size()) {
          NormalizeRequeuedOuter(&ir, ip.outer_idx);
          ir.requeued_outers.emplace_back(ip.outer_idx, ip.irc);
          ip.has_outer = false;
          ip.irc.Resize(0);
          idle.push_back(ip_id);
        }
        continue;
      }
      // A plainly idle IP is released only when its instruction's operand
      // stream has run dry.
      if (!has_work) idle.push_back(ip_id);
    }
    for (int ip_id : idle) {
      ReleaseIdleIp(static_cast<int>(i), ip_id);
    }
  }
  in_reclaim_ = false;
}

// ---------------------------------------------------------------------------
// Work dispatch
// ---------------------------------------------------------------------------

std::optional<std::pair<int, size_t>> Sim::NextStreamPage(InstrRt* ir) {
  // Units stranded on a dead processor go out first: they are behind the
  // stream cursor, so nothing else would ever hand them out again.
  if (!ir->lost_units.empty()) {
    auto unit = ir->lost_units.front();
    ir->lost_units.pop_front();
    return unit;
  }
  // Barrier difference consumes the subtrahend (slot 1) before the left
  // input; every other operator streams its slots in order.
  std::vector<int> order;
  if (ir->def->op == PlanOp::kDifference) {
    order = {1, 0};
  } else {
    for (size_t i = 0; i < ir->operands.size(); ++i) {
      order.push_back(static_cast<int>(i));
    }
  }
  for (int slot : order) {
    OperandRt& op = ir->operands[static_cast<size_t>(slot)];
    // The cursor counts units: page index x partition (PartitionsOf == 1
    // everywhere except the parallel project).
    if (op.next_unassigned < StreamUnits(*ir, op)) {
      return std::make_pair(slot, op.next_unassigned++);
    }
    if (ir->def->op == PlanOp::kDifference && slot == 1 && !op.complete) {
      // Cannot start the left side until the right side is complete.
      return std::nullopt;
    }
  }
  return std::nullopt;
}

void Sim::DispatchWork(int instr_id) {
  InstrRt& ir = instrs_[static_cast<size_t>(instr_id)];
  if (ir.phase != InstrPhase::kRunning) return;
  const bool is_join = ir.def->op == PlanOp::kJoin;
  for (int ip_id : ir.ips) {
    IpRt& ip = ips_[static_cast<size_t>(ip_id)];
    if (ip.busy || ip.flush_sent) continue;
    if (is_join) {
      if (ip.has_outer) continue;
      OperandRt& outer = ir.operands[0];
      if (!ir.requeued_outers.empty()) {
        auto [idx, irc] = std::move(ir.requeued_outers.back());
        ir.requeued_outers.pop_back();
        SendJoinAssign(instr_id, ip_id, idx, &irc);
      } else if (outer.next_unassigned < outer.pages.size()) {
        SendJoinAssign(instr_id, ip_id, outer.next_unassigned++);
      }
    } else {
      auto next = NextStreamPage(&ir);
      if (!next.has_value()) break;
      SendUnaryPacket(instr_id, ip_id, next->first, next->second);
    }
  }
  const bool has_work =
      is_join ? (ir.operands[0].next_unassigned < ir.operands[0].pages.size() ||
                 !ir.requeued_outers.empty())
              : HasStreamWork(ir);
  // Work remains beyond what the current processors absorbed: ask the MC
  // for more (it applies the fair-share policy). Barrier instructions are
  // capped at one processor and never re-request.
  if (has_work && !(IsBarrier(ir) && !ir.ips.empty())) {
    RequestIps(instr_id);
  }
  // No hold-and-wait: while other instructions are starved of processors,
  // an IP idling here (its operand stream has momentarily run dry) goes
  // back to the MC pool; it will be re-requested when work arrives.
  if (!has_work && !pending_requests_.empty()) {
    std::vector<int> idle;
    for (int ip_id : ir.ips) {
      IpRt& ip = ips_[static_cast<size_t>(ip_id)];
      if (!ip.busy && !ip.flush_sent && (!is_join || !ip.has_outer)) {
        idle.push_back(ip_id);
      }
    }
    for (int ip_id : idle) {
      ReleaseIdleIp(instr_id, ip_id);
    }
  }
}

// ---------------------------------------------------------------------------
// Streaming unary execution
// ---------------------------------------------------------------------------

void Sim::SendUnaryPacket(int instr_id, int ip_id, int slot, size_t unit_idx) {
  InstrRt& ir = instrs_[static_cast<size_t>(instr_id)];
  IpRt& ip = ips_[static_cast<size_t>(ip_id)];
  OperandRt& op = ir.operands[static_cast<size_t>(slot)];
  const int parts = PartitionsOf(ir);
  const size_t page_idx = unit_idx / static_cast<size_t>(parts);
  const int partition = static_cast<int>(unit_idx % static_cast<size_t>(parts));
  StagedPage& staged = op.pages[page_idx];
  IcRt& ic = ics_[static_cast<size_t>(ir.ic)];

  const int64_t payload = staged.page->payload_bytes();
  // A parallel-project page rides the ring once, broadcast to every
  // participating IP; later partition units are header-only packets
  // telling an IP to process its partition of the already-received page.
  const bool page_rides = partition == 0 && !staged.at_ip;
  const SimTime fetch_delay =
      page_rides ? EnsureLocal(&ic, staged.uid, payload) : SimTime::Zero();
  ip.busy = true;
  ir.outstanding_packets++;
  report_.instruction_packets++;
  if (parts > 1 && partition == 0) report_.broadcasts++;
  // The page leaves the IC's working set once its last unit is dispatched.
  if (!staged.at_ip && partition == parts - 1) ic.local.Remove(staged.uid);

  const int64_t wire = page_rides ? UnaryPacketWire(payload) : kInstrHeaderBytes;
  IpRt::PendingAssign a;
  a.id = next_assign_id_++;
  a.kind = IpRt::PendingAssign::kUnary;
  a.slot = slot;
  a.unit_idx = unit_idx;
  a.wire = wire;
  ip.assign = a;
  Tr(obs::TraceEventKind::kPacketEnqueued, instr_id, ip_id, wire, "unary");
  // Charge the fetch delay before the ring insertion.
  eq_.ScheduleAfter(fetch_delay, [this, instr_id, ip_id, id = a.id] {
    TransmitAssignment(instr_id, ip_id, id);
  });
}

void Sim::IpUnaryArrive(int instr_id, int ip_id, int slot, size_t unit_idx) {
  InstrRt& ir = instrs_[static_cast<size_t>(instr_id)];
  IpRt& ip = ips_[static_cast<size_t>(ip_id)];
  const int parts = PartitionsOf(ir);
  const size_t page_idx = unit_idx / static_cast<size_t>(parts);
  const int partition = static_cast<int>(unit_idx % static_cast<size_t>(parts));
  const StagedPage& staged =
      ir.operands[static_cast<size_t>(slot)].pages[page_idx];
  const Page& in = *staged.page;

  auto run = RunKernel(&ir, &ip, slot, in, nullptr, partition);
  if (!run.ok()) {
    Fail(run.status());
    IpUnaryDone(instr_id, ip_id, {});
    return;
  }
  auto [full_pages, out_bytes] = *std::move(run);
  // A partitioned scan only touches its share of the comparisons; the page
  // scan itself is charged in full (every tuple is hashed and examined).
  const SimTime service =
      cfg_.processor.OperatorTime(in.payload_bytes(), out_bytes) +
      (staged.at_ip ? opt_.direct_routing_overhead : SimTime::Zero());
  const SimTime done = ip.proc.Acquire(eq_.now(), service);
  report_.ip_busy_total += service;
  Tr(obs::TraceEventKind::kTaskExecuted, instr_id, ip_id, out_bytes, "unary");
  eq_.ScheduleAt(done, [this, instr_id, ip_id,
                        pages = std::move(full_pages)]() mutable {
    IpUnaryDone(instr_id, ip_id, std::move(pages));
  });
}

void Sim::IpUnaryDone(int instr_id, int ip_id, std::vector<PagePtr> pages) {
  InstrRt& ir = instrs_[static_cast<size_t>(instr_id)];
  IpRt& ip = ips_[static_cast<size_t>(ip_id)];
  for (PagePtr& page : pages) {
    SendResultPage(instr_id, std::move(page));
  }
  // Done control packet back to the controlling IC.
  report_.control_packets++;
  const SimTime arrival = SendOuter(kControlBytes);
  eq_.ScheduleAt(arrival, [this, instr_id, ip_id] {
    InstrRt& ir2 = instrs_[static_cast<size_t>(instr_id)];
    IpRt& ip2 = ips_[static_cast<size_t>(ip_id)];
    ip2.busy = false;
    ir2.outstanding_packets--;
    DispatchWork(instr_id);
    MaybeFlush(instr_id);
  });
  (void)ir;
  (void)ip;
}

// ---------------------------------------------------------------------------
// Join execution (Section 4.2 protocol)
// ---------------------------------------------------------------------------

void Sim::SendJoinAssign(int instr_id, int ip_id, size_t outer_idx,
                         const BitVector* resume_irc) {
  InstrRt& ir = instrs_[static_cast<size_t>(instr_id)];
  IpRt& ip = ips_[static_cast<size_t>(ip_id)];
  IcRt& ic = ics_[static_cast<size_t>(ir.ic)];
  OperandRt& outer_op = ir.operands[0];
  OperandRt& inner_op = ir.operands[1];
  StagedPage& outer = outer_op.pages[outer_idx];

  ip.irc.Resize(inner_op.pages.size());
  ip.irc.ClearAll();
  if (resume_irc != nullptr) {
    // Resuming a reclaimed outer page: restore its join progress.
    for (size_t i = 0; i < resume_irc->size() && i < ip.irc.size(); ++i) {
      if (resume_irc->Get(i)) ip.irc.Set(i);
    }
  }
  // Pick the first unprocessed inner page to ship with the assignment
  // (Figure 4.3: "the two operands in the packet").
  std::optional<size_t> first_inner;
  {
    const size_t idx = ip.irc.FirstZero();
    if (idx < inner_op.pages.size()) first_inner = idx;
  }

  const int64_t outer_payload = outer.page->payload_bytes();
  const int64_t inner_payload =
      first_inner.has_value()
          ? inner_op.pages[*first_inner].page->payload_bytes()
          : 0;
  // Directly routed outer pages are already at an IP (Section 5.0).
  const bool direct_outer = outer.at_ip;
  SimTime fetch_delay = direct_outer
                            ? SimTime::Zero()
                            : EnsureLocal(&ic, outer.uid, outer_payload);
  if (first_inner.has_value()) {
    fetch_delay += EnsureLocal(&ic, inner_op.pages[*first_inner].uid,
                               inner_payload);
  }
  if (!direct_outer) ic.local.Remove(outer.uid);

  ip.busy = true;  // Busy until the assignment lands.
  ip.has_outer = true;
  ip.outer = outer;
  ip.outer_idx = outer_idx;
  ip.pending_inner.clear();
  ip.awaiting_request = false;
  report_.instruction_packets++;

  const int64_t wire =
      JoinPacketWire(direct_outer ? 0 : outer_payload, inner_payload,
                     first_inner.has_value());
  IpRt::PendingAssign a;
  a.id = next_assign_id_++;
  a.kind = IpRt::PendingAssign::kJoin;
  a.unit_idx = outer_idx;
  a.first_inner = first_inner;
  a.wire = wire;
  ip.assign = a;
  Tr(obs::TraceEventKind::kPacketEnqueued, instr_id, ip_id, wire, "join");
  eq_.ScheduleAfter(fetch_delay, [this, instr_id, ip_id, id = a.id] {
    TransmitAssignment(instr_id, ip_id, id);
  });
}

void Sim::IpJoinAssignArrive(int instr_id, int ip_id, size_t outer_idx,
                             std::optional<size_t> inner_idx) {
  (void)outer_idx;
  IpRt& ip = ips_[static_cast<size_t>(ip_id)];
  ip.busy = false;
  if (ip.outer.at_ip) {
    // The IP managed the directly routed outer page itself (Section 5.0's
    // "increased IP complexity"); charge it once.
    ip.proc.Acquire(eq_.now(), opt_.direct_routing_overhead);
    report_.ip_busy_total += opt_.direct_routing_overhead;
    ip.outer.at_ip = false;
  }
  if (inner_idx.has_value()) {
    IpStartJoinStep(instr_id, ip_id, *inner_idx);
  } else {
    IpJoinAdvance(instr_id, ip_id);
  }
}

void Sim::IpStartJoinStep(int instr_id, int ip_id, size_t inner_idx) {
  InstrRt& ir = instrs_[static_cast<size_t>(instr_id)];
  IpRt& ip = ips_[static_cast<size_t>(ip_id)];
  if (ip.dead) return;  // Fail-stop: a dead station starts nothing new.
  if (ip.irc.size() <= inner_idx) {
    ip.irc.Resize(ir.operands[1].pages.size());
  }
  if (ip.irc.Get(inner_idx)) {
    IpJoinAdvance(instr_id, ip_id);
    return;
  }
  ip.busy = true;
  ip.irc.Set(inner_idx);
  const Page& outer = *ip.outer.page;
  const Page& inner = *ir.operands[1].pages[inner_idx].page;
  auto run = RunKernel(&ir, &ip, /*slot=*/0, outer, &inner);
  if (!run.ok()) {
    Fail(run.status());
    IpJoinStepDone(instr_id, ip_id, inner_idx, {});
    return;
  }
  auto [full_pages, out_bytes] = *std::move(run);
  const SimTime service = cfg_.processor.JoinStepTime(
      outer.payload_bytes(), inner.payload_bytes(), out_bytes);
  const SimTime done = ip.proc.Acquire(eq_.now(), service);
  report_.ip_busy_total += service;
  Tr(obs::TraceEventKind::kTaskExecuted, instr_id, ip_id, out_bytes,
     "join-step");
  eq_.ScheduleAt(done, [this, instr_id, ip_id, inner_idx,
                        pages = std::move(full_pages)]() mutable {
    IpJoinStepDone(instr_id, ip_id, inner_idx, std::move(pages));
  });
}

void Sim::IpJoinStepDone(int instr_id, int ip_id, size_t inner_idx,
                         std::vector<PagePtr> pages) {
  (void)inner_idx;
  IpRt& ip = ips_[static_cast<size_t>(ip_id)];
  ip.busy = false;
  for (PagePtr& page : pages) {
    SendResultPage(instr_id, std::move(page));
  }
  IpJoinAdvance(instr_id, ip_id);
}

void Sim::IpJoinAdvance(int instr_id, int ip_id) {
  InstrRt& ir = instrs_[static_cast<size_t>(instr_id)];
  IpRt& ip = ips_[static_cast<size_t>(ip_id)];
  if (ip.dead) return;  // Its held outer is salvaged at detection time.
  if (!ip.has_outer || ip.busy) return;
  // Opportunistic: process any broadcast page already queued locally.
  while (!ip.pending_inner.empty()) {
    const size_t idx = ip.pending_inner.front();
    ip.pending_inner.pop_front();
    if (ip.irc.size() <= idx || !ip.irc.Get(idx)) {
      IpStartJoinStep(instr_id, ip_id, idx);
      return;
    }
  }
  const OperandRt& inner_op = ir.operands[1];
  ip.irc.Resize(inner_op.pages.size());
  if (inner_op.complete) {
    const size_t missing = ip.irc.FirstZero();
    if (missing < ip.irc.size()) {
      // "Scan its IRC vector and then proceed to request those pages which
      // it missed."
      if (!ip.awaiting_request) {
        ip.awaiting_request = true;
        report_.control_packets++;
        const SimTime arrival = SendOuter(kControlBytes);
        eq_.ScheduleAt(arrival, [this, instr_id, missing] {
          IcHandlePageRequest(instr_id, missing);
        });
      }
      return;
    }
    // Outer page fully joined: "zero its IRC vector and then signal the IC
    // that it is ready for another page of the outer relation".
    IpOuterDone(instr_id, ip_id);
    return;
  }
  // Inner incomplete: request the next page beyond what we have seen (the
  // IC responds by broadcasting when it arrives; quiesce until then).
  if (!ip.awaiting_request && ip.irc.size() > 0 &&
      ip.irc.FirstZero() < ip.irc.size()) {
    const size_t missing = ip.irc.FirstZero();
    ip.awaiting_request = true;
    report_.control_packets++;
    const SimTime arrival = SendOuter(kControlBytes);
    eq_.ScheduleAt(arrival, [this, instr_id, missing] {
      IcHandlePageRequest(instr_id, missing);
    });
    return;
  }
  // Quiescing mid-outer (all staged inner pages joined, inner relation
  // incomplete) while other instructions are starved at the MC: hand the
  // processor back instead of hold-and-wait. The outer page resumes later
  // with its IRC progress intact.
  if (!pending_requests_.empty() && ip.has_outer && !ip.busy &&
      ip.pending_inner.empty() && !inner_op.complete &&
      ip.irc.Count() >= inner_op.pages.size()) {
    NormalizeRequeuedOuter(&ir, ip.outer_idx);
    ir.requeued_outers.emplace_back(ip.outer_idx, ip.irc);
    ip.has_outer = false;
    ip.irc.Resize(0);
    ReleaseIdleIp(instr_id, ip_id);
  }
}

void Sim::IpOuterDone(int instr_id, int ip_id) {
  IpRt& ip = ips_[static_cast<size_t>(ip_id)];
  ip.has_outer = false;
  ip.irc.ClearAll();
  ip.pending_inner.clear();
  report_.control_packets++;
  const SimTime arrival = SendOuter(kControlBytes);
  eq_.ScheduleAt(arrival, [this, instr_id] {
    InstrRt& ir = instrs_[static_cast<size_t>(instr_id)];
    ir.outer_done++;
    DispatchWork(instr_id);
    MaybeFlush(instr_id);
  });
}

void Sim::IcHandlePageRequest(int instr_id, size_t inner_idx) {
  InstrRt& ir = instrs_[static_cast<size_t>(instr_id)];
  if (ir.phase == InstrPhase::kFinished) return;
  OperandRt& inner_op = ir.operands[1];
  if (inner_idx >= inner_op.pages.size()) {
    // Page not staged yet; it will be broadcast on arrival.
    for (int ip_id : ir.ips) {
      ips_[static_cast<size_t>(ip_id)].awaiting_request = false;
    }
    return;
  }
  // Suppress duplicates while a broadcast of this page is in flight:
  // "Subsequent requests for the same page which are received by the IC
  // 'soon' afterwards can be ignored."
  if (inner_idx < ir.inner_bcast_until.size() &&
      ir.inner_bcast_until[inner_idx] > eq_.now()) {
    return;
  }
  BroadcastInner(instr_id, inner_idx);
}

void Sim::BroadcastInner(int instr_id, size_t inner_idx) {
  InstrRt& ir = instrs_[static_cast<size_t>(instr_id)];
  if (ir.phase != InstrPhase::kRunning) return;
  OperandRt& inner_op = ir.operands[1];
  IcRt& ic = ics_[static_cast<size_t>(ir.ic)];
  StagedPage& staged = inner_op.pages[inner_idx];
  const int64_t payload = staged.page->payload_bytes();
  const SimTime fetch_delay = EnsureLocal(&ic, staged.uid, payload);
  const int64_t wire = UnaryPacketWire(payload);

  if (ir.inner_bcast_until.size() <= inner_idx) {
    ir.inner_bcast_until.resize(inner_idx + 1, SimTime::Zero());
  }

  auto deliver = [this, instr_id, inner_idx](SimTime arrival) {
    InstrRt& ir2 = instrs_[static_cast<size_t>(instr_id)];
    ir2.inner_bcast_until[inner_idx] = arrival;
    eq_.ScheduleAt(arrival, [this, instr_id, inner_idx] {
      InstrRt& ir3 = instrs_[static_cast<size_t>(instr_id)];
      if (ir3.phase != InstrPhase::kRunning) return;
      for (int ip_id : ir3.ips) {
        IpRt& ip = ips_[static_cast<size_t>(ip_id)];
        if (ip.dead) continue;  // Broadcast falls on deaf ears.
        ip.awaiting_request = false;
        if (!ip.has_outer) continue;
        ip.irc.Resize(ir3.operands[1].pages.size());
        if (ip.irc.Get(inner_idx)) continue;
        if (!ip.busy) {
          IpStartJoinStep(instr_id, ip_id, inner_idx);
        } else if (ip.pending_inner.size() < 2) {
          // Local memory can hold the broadcast page for later.
          ip.pending_inner.push_back(inner_idx);
        }
        // Otherwise the IP "ignores the packet" and will request the page
        // after seeing the last-page marker (IRC catch-up).
      }
    });
  };

  if (opt_.broadcast_join) {
    // One ring insertion reaches every participating IP (requirement 4).
    report_.broadcasts++;
    Tr(obs::TraceEventKind::kPacketEnqueued, instr_id, -1, wire, "broadcast");
    eq_.ScheduleAfter(fetch_delay, [this, wire, deliver] {
      deliver(SendOuter(wire));
    });
  } else {
    // Ablation: unicast the page to each IP separately.
    const size_t n = std::max<size_t>(1, ir.ips.size());
    Tr(obs::TraceEventKind::kPacketEnqueued, instr_id, -1,
       wire * static_cast<int64_t>(n), "unicast-inner");
    eq_.ScheduleAfter(fetch_delay, [this, wire, deliver, n] {
      SimTime last;
      for (size_t i = 0; i < n; ++i) {
        last = SendOuter(wire);
      }
      deliver(last);
    });
  }
}

void Sim::NotifyInnerComplete(int instr_id) {
  InstrRt& ir = instrs_[static_cast<size_t>(instr_id)];
  if (ir.inner_complete_sent) return;
  ir.inner_complete_sent = true;
  // Small broadcast: "a packet ... which indicates that this is the last
  // page of the inner relation."
  report_.control_packets++;
  const SimTime arrival = SendOuter(kControlBytes);
  eq_.ScheduleAt(arrival, [this, instr_id] {
    InstrRt& ir2 = instrs_[static_cast<size_t>(instr_id)];
    for (int ip_id : ir2.ips) {
      IpJoinAdvance(instr_id, ip_id);
    }
    MaybeFlush(instr_id);
  });
}

// ---------------------------------------------------------------------------
// Results
// ---------------------------------------------------------------------------

void Sim::SendResultPage(int instr_id, PagePtr page) {
  InstrRt& ir = instrs_[static_cast<size_t>(instr_id)];
  report_.result_packets++;
  const int64_t wire = ResultPacketWire(page->payload_bytes());
  Tr(obs::TraceEventKind::kPageProduced, instr_id, -1, page->payload_bytes(),
     nullptr);
  const SimTime arrival = SendOuter(wire);
  eq_.ScheduleAt(arrival, [this, instr_id, page = std::move(page)] {
    DeliverResult(instr_id, page);
  });
  (void)ir;
}

void Sim::DeliverResult(int producer_instr, PagePtr page) {
  const MachineInstruction& def =
      prog_.instructions[static_cast<size_t>(producer_instr)];
  if (def.consumer < 0) {
    // Root: results stream to the host through the MC.
    report_.results[def.query_index].AddPage(std::move(page));
    return;
  }
  // Section 5.0 direct routing: a streaming (non-join, non-barrier)
  // consumer can take the page at an IP directly; the IC only learns of it
  // via a notification and skips both the compression step and the later
  // full-page instruction packet.
  // Eligible consumers: streaming unary operators, and the OUTER side of a
  // join (outer pages are handed to one IP each; the inner side must stay
  // IC-controlled for the broadcast protocol).
  const MachineInstruction& consumer =
      prog_.instructions[static_cast<size_t>(def.consumer)];
  // Only full pages travel directly ("route SOME of the data pages"):
  // partial flush pages still go to the IC so they can be compressed into
  // full pages — otherwise fragment outers would multiply join work.
  InstrRt& consumer_rt = instrs_[static_cast<size_t>(def.consumer)];
  const bool eligible =
      (consumer.op == PlanOp::kJoin ? def.consumer_slot == 0
                                    : !consumer.barrier) &&
      // Parallel-project pages must reach the IC: every partition's IP
      // needs them, so a single-IP delivery would strand the page.
      !IsParallelProject(consumer_rt) && page->full();
  if (opt_.ip_direct_routing && eligible && page->num_tuples() > 0) {
    report_.direct_routes++;
    report_.control_packets++;
    (void)SendOuter(kControlBytes);  // Notification to the controlling IC.
    InstrRt& ir = instrs_[static_cast<size_t>(def.consumer)];
    OperandRt& op = ir.operands[static_cast<size_t>(def.consumer_slot)];
    StagedPage staged{std::move(page), NextUid(), /*at_ip=*/true};
    page_sizes_.emplace(staged.uid, staged.page->payload_bytes());
    op.pages.push_back(std::move(staged));
    op.total_tuples += static_cast<uint64_t>(op.pages.back().page->num_tuples());
    if (ir.phase == InstrPhase::kWaiting) {
      TryStart(def.consumer);
    } else if (ir.phase == InstrPhase::kRunning) {
      DispatchWork(def.consumer);
    }
    return;
  }
  // Repack into the consumer's operand units (the ICs "compress [pages] to
  // form full pages").
  RepackInto(def.consumer, def.consumer_slot, *page);
}

// ---------------------------------------------------------------------------
// Flush and finish
// ---------------------------------------------------------------------------

void Sim::MaybeFlush(int instr_id) {
  InstrRt& ir = instrs_[static_cast<size_t>(instr_id)];
  if (ir.phase != InstrPhase::kRunning) return;
  for (const OperandRt& op : ir.operands) {
    if (!op.complete) return;
  }
  if (ir.def->op == PlanOp::kJoin) {
    const OperandRt& outer = ir.operands[0];
    if (outer.next_unassigned < outer.pages.size()) return;
    if (ir.outer_done < outer.pages.size()) return;
  } else {
    if (!ir.lost_units.empty()) return;
    for (const OperandRt& op : ir.operands) {
      if (op.next_unassigned < StreamUnits(ir, op)) return;
    }
    if (ir.outstanding_packets > 0) return;
  }
  if (ir.request_outstanding) {
    // A request parked in the MC's queue can be withdrawn (there is no
    // work left for the processors it asked for); a grant already in
    // flight will re-trigger this check on arrival.
    auto it = std::find(pending_requests_.begin(), pending_requests_.end(),
                        instr_id);
    if (it == pending_requests_.end()) return;
    pending_requests_.erase(it);
    ir.request_outstanding = false;
  }
  ir.phase = InstrPhase::kFlushing;
  if (ir.ips.empty()) {
    // An aggregate's groups materialize at flush time; with no processor
    // bound (all reclaimed or dead) the finish step still needs one.
    if (ir.def->op == PlanOp::kAggregate && ir.agg != nullptr &&
        !ir.agg_finished && live_ips_ > 0) {
      ir.phase = InstrPhase::kRunning;
      RequestIps(instr_id);
      return;
    }
    FinishInstr(instr_id);
    return;
  }
  ir.unflushed = static_cast<int>(ir.ips.size());
  for (int ip_id : ir.ips) {
    SendFlush(instr_id, ip_id);
  }
}

void Sim::SendFlush(int instr_id, int ip_id) {
  IpRt& ip = ips_[static_cast<size_t>(ip_id)];
  ip.flush_sent = true;
  report_.instruction_packets++;
  // Header-only instruction packet with flush-when-done set.
  IpRt::PendingAssign a;
  a.id = next_assign_id_++;
  a.kind = IpRt::PendingAssign::kFlush;
  a.wire = kInstrHeaderBytes;
  ip.assign = a;
  TransmitAssignment(instr_id, ip_id, a.id);
}

void Sim::IpFlushArrive(int instr_id, int ip_id) {
  InstrRt& ir = instrs_[static_cast<size_t>(instr_id)];
  IpRt& ip = ips_[static_cast<size_t>(ip_id)];
  // Aggregates materialize their groups at flush time on the single
  // barrier IP.
  std::vector<PagePtr> pages;
  if (ir.def->op == PlanOp::kAggregate && ir.agg != nullptr &&
      !ir.agg_finished) {
    struct FlushSink final : public PageSink {
      Sim* sim;
      InstrRt* ir;
      IpRt* ip;
      std::vector<PagePtr>* full;
      Status Emit(Slice tuple) override {
        return sim->AppendResultTuple(ir, ip, tuple, full);
      }
    };
    FlushSink sink;
    sink.sim = this;
    sink.ir = &ir;
    sink.ip = &ip;
    sink.full = &pages;
    Status s = ir.agg->Finish(&sink);
    if (!s.ok()) Fail(s);
    ir.agg_finished = true;
  }
  std::vector<PagePtr> partial = DrainFullResultPages(&ir, &ip, true);
  for (PagePtr& p : pages) SendResultPage(instr_id, std::move(p));
  for (PagePtr& p : partial) SendResultPage(instr_id, std::move(p));
  Tr(obs::TraceEventKind::kTaskExecuted, instr_id, ip_id, 0, "flush");
  const SimTime service = cfg_.processor.packet_overhead;
  const SimTime done = ip.proc.Acquire(eq_.now(), service);
  report_.ip_busy_total += service;
  report_.control_packets++;
  eq_.ScheduleAt(done, [this, instr_id] {
    const SimTime arrival = SendOuter(kControlBytes);
    eq_.ScheduleAt(arrival, [this, instr_id] {
      InstrRt& ir2 = instrs_[static_cast<size_t>(instr_id)];
      if (--ir2.unflushed == 0) {
        FinishInstr(instr_id);
      }
    });
  });
}

void Sim::FinishInstr(int instr_id) {
  InstrRt& ir = instrs_[static_cast<size_t>(instr_id)];
  if (ir.phase == InstrPhase::kFinished) return;
  ir.phase = InstrPhase::kFinished;

  // Deferred side effects.
  if (ir.def->op == PlanOp::kDelete) {
    auto file = storage_->GetHeapFile(ir.def->node->relation);
    if (file.ok()) {
      const Expr* pred = ir.def->node->predicate.get();
      const CompiledPredicate* compiled =
          ir.compiled_pred.has_value() ? &*ir.compiled_pred : nullptr;
      auto removed =
          (*file)->DeleteWhere([pred, compiled](const TupleView& t) {
            if (compiled != nullptr) {
              return compiled->Matches(t.raw().data(), nullptr);
            }
            auto r = pred->EvalBool(t, nullptr);
            return r.ok() && *r;
          });
      if (!removed.ok()) Fail(removed.status());
      auto meta = storage_->catalog().GetRelation(ir.def->node->relation);
      if (meta.ok()) {
        Status s = storage_->SyncStats(meta->id);
        if (!s.ok()) Fail(s);
      }
    } else {
      Fail(file.status());
    }
  }
  if (ir.def->op == PlanOp::kAppend) {
    auto meta = storage_->catalog().GetRelation(ir.def->node->relation);
    if (meta.ok()) {
      Status s = storage_->SyncStats(meta->id);
      if (!s.ok()) Fail(s);
    }
  }

  // Free the inner relation and any remaining residency.
  IcRt& ic = ics_[static_cast<size_t>(ir.ic)];
  for (OperandRt& op : ir.operands) {
    for (StagedPage& p : op.pages) {
      ic.local.Remove(p.uid);
    }
  }

  ReleaseAllIps(instr_id);

  if (ir.def->consumer >= 0) {
    // Tell the consumer's IC that this operand is complete (a small
    // message following the last result page on the ring, so ordering is
    // preserved by the ring's FIFO service).
    report_.control_packets++;
    const SimTime arrival = SendOuter(kControlBytes);
    const int consumer = ir.def->consumer;
    const int slot = ir.def->consumer_slot;
    eq_.ScheduleAt(arrival, [this, consumer, slot] {
      CompleteOperand(consumer, slot);
    });
  } else {
    // Root of a query: completion reaches the host via the MC.
    const size_t qi = ir.def->query_index;
    report_.control_packets++;
    const SimTime arrival = SendOuter(kControlBytes);
    eq_.ScheduleAt(arrival, [this, qi] {
      report_.query_completion[qi] = eq_.now();
      query_snapshots_[qi].Release();
      conflicts_.Release(qi + 1);
      --active_queries_;
      TryAdmitWaiting();
    });
  }
}

// ---------------------------------------------------------------------------
// Fault injection and recovery
// ---------------------------------------------------------------------------

void Sim::ArmFaults() {
  if (!injector_.active()) return;
  const int num_ips = cfg_.num_instruction_processors;
  const int num_ics = cfg_.num_instruction_controllers;
  int rr_ip = 0;
  int rr_ic = 0;
  for (const FaultEvent& ev : injector_.plan().events) {
    switch (ev.type) {
      case FaultType::kKillIp: {
        const int target =
            ev.target >= 0 ? ev.target % num_ips : (rr_ip++ % num_ips);
        eq_.ScheduleAt(ev.at, [this, target] { KillIp(target); });
        break;
      }
      case FaultType::kFailIc: {
        const int target =
            ev.target >= 0 ? ev.target % num_ics : (rr_ic++ % num_ics);
        eq_.ScheduleAt(ev.at, [this, target] { FailIc(target); });
        break;
      }
      case FaultType::kStallCache:
        eq_.ScheduleAt(ev.at,
                       [this, d = ev.duration] { InjectCacheStall(d); });
        break;
      case FaultType::kDropPacket:
      case FaultType::kCorruptPacket:
        break;  // Armed inside the injector, consumed per packet.
    }
  }
}

void Sim::TransmitAssignment(int instr_id, int ip_id, uint64_t assign_id) {
  IpRt& ip = ips_[static_cast<size_t>(ip_id)];
  if (!ip.assign.has_value() || ip.assign->id != assign_id) return;
  const IpRt::PendingAssign& a = *ip.assign;
  const int attempt = a.attempts;
  const auto fate =
      injector_.active()
          ? injector_.OnAssignmentPacket(eq_.now(), &report_.faults)
          : FaultInjector::PacketFate::kDeliver;
  // The ring insertion is charged even when the packet is lost in transit.
  const SimTime arrival = SendOuter(a.wire);
  switch (fate) {
    case FaultInjector::PacketFate::kDeliver:
      eq_.ScheduleAt(arrival, [this, instr_id, ip_id, assign_id] {
        AssignmentArrive(instr_id, ip_id, assign_id);
      });
      break;
    case FaultInjector::PacketFate::kDrop:
      Tr(obs::TraceEventKind::kFaultInjected, instr_id, ip_id, a.wire,
         "drop-packet");
      break;  // Vanishes; the IC's watchdog notices.
    case FaultInjector::PacketFate::kCorrupt:
      Tr(obs::TraceEventKind::kFaultInjected, instr_id, ip_id, a.wire,
         "corrupt-packet");
      // Checksum failure at the IP, which NACKs; the IC retransmits
      // (charged against the same retry budget as a timeout would be).
      eq_.ScheduleAt(arrival, [this, instr_id, ip_id, assign_id, attempt] {
        if (ips_[static_cast<size_t>(ip_id)].dead) return;
        report_.control_packets++;
        const SimTime back = SendOuter(kControlBytes);
        eq_.ScheduleAt(back, [this, instr_id, ip_id, assign_id, attempt] {
          RetryAssignment(instr_id, ip_id, assign_id, attempt);
        });
      });
      break;
  }
  if (injector_.active()) {
    // Watchdog armed past the would-be arrival, so a healthy delivery
    // always acknowledges first: zero false positives under congestion.
    eq_.ScheduleAt(arrival + injector_.plan().detection_timeout,
                   [this, instr_id, ip_id, assign_id, attempt] {
                     AssignmentTimeout(instr_id, ip_id, assign_id, attempt);
                   });
  }
}

void Sim::AssignmentArrive(int instr_id, int ip_id, uint64_t assign_id) {
  IpRt& ip = ips_[static_cast<size_t>(ip_id)];
  if (!ip.assign.has_value() || ip.assign->id != assign_id) return;
  if (ip.dead) return;  // Fail-stop: never accepted, salvaged at detection.
  const IpRt::PendingAssign a = *ip.assign;
  ip.assign.reset();  // Acceptance — this is what the watchdog checks.
  Tr(obs::TraceEventKind::kPacketDelivered, instr_id, ip_id, a.wire, nullptr);
  if (injector_.active()) {
    report_.control_packets++;
    (void)SendOuter(kControlBytes);  // Acknowledgement back to the IC.
  }
  switch (a.kind) {
    case IpRt::PendingAssign::kUnary:
      IpUnaryArrive(instr_id, ip_id, a.slot, a.unit_idx);
      break;
    case IpRt::PendingAssign::kJoin:
      IpJoinAssignArrive(instr_id, ip_id, a.unit_idx, a.first_inner);
      break;
    case IpRt::PendingAssign::kFlush:
      IpFlushArrive(instr_id, ip_id);
      break;
  }
}

void Sim::AssignmentTimeout(int instr_id, int ip_id, uint64_t assign_id,
                            int attempt) {
  IpRt& ip = ips_[static_cast<size_t>(ip_id)];
  if (!ip.assign.has_value() || ip.assign->id != assign_id ||
      ip.assign->attempts != attempt) {
    return;  // Acknowledged, already retried, or salvaged.
  }
  report_.faults.timeouts++;
  if (ip.dead) {
    DeclareIpDead(ip_id);
    return;
  }
  RetryAssignment(instr_id, ip_id, assign_id, attempt);
}

void Sim::RetryAssignment(int instr_id, int ip_id, uint64_t assign_id,
                          int attempt) {
  IpRt& ip = ips_[static_cast<size_t>(ip_id)];
  if (!ip.assign.has_value() || ip.assign->id != assign_id ||
      ip.assign->attempts != attempt) {
    return;
  }
  if (ip.dead) {
    DeclareIpDead(ip_id);
    return;
  }
  IpRt::PendingAssign& a = *ip.assign;
  if (a.attempts > injector_.plan().max_retries) {
    Fail(Status::Unavailable(StrFormat(
        "assignment to IP %d lost after %d transmissions (instr %d)", ip_id,
        a.attempts, instr_id)));
    return;
  }
  const SimTime backoff =
      injector_.plan().retry_backoff *
      static_cast<int64_t>(1ll << std::min(a.attempts - 1, 16));
  a.attempts++;
  report_.faults.retries++;
  Tr(obs::TraceEventKind::kFaultRecovered, instr_id, ip_id, a.wire, "retry");
  report_.faults.retry_ticks_lost += backoff;
  report_.instruction_packets++;
  eq_.ScheduleAfter(backoff, [this, instr_id, ip_id, assign_id] {
    TransmitAssignment(instr_id, ip_id, assign_id);
  });
}

void Sim::KillIp(int ip_id) {
  IpRt& ip = ips_[static_cast<size_t>(ip_id)];
  if (ip.dead) return;
  ip.dead = true;
  report_.faults.injected++;
  report_.faults.ip_kills++;
  Tr(obs::TraceEventKind::kFaultInjected, ip.instr, ip_id, 0, "ip-kill");
  // MC status poll: guarantees detection even when no assignment is in
  // flight (e.g. an IP holding a join outer while waiting on broadcasts).
  // An assignment watchdog may detect the death sooner; DeclareIpDead is
  // idempotent.
  eq_.ScheduleAfter(injector_.plan().detection_timeout,
                    [this, ip_id] { DeclareIpDead(ip_id); });
}

void Sim::DeclareIpDead(int ip_id) {
  IpRt& ip = ips_[static_cast<size_t>(ip_id)];
  if (ip.removed) return;
  ip.removed = true;
  live_ips_--;
  auto fit = std::find(free_ips_.begin(), free_ips_.end(), ip_id);
  if (fit != free_ips_.end()) free_ips_.erase(fit);
  const int instr_id = ip.instr;
  if (instr_id >= 0) {
    InstrRt& ir = instrs_[static_cast<size_t>(instr_id)];
    // Ship output still buffered at the dead station: its kernels ran at
    // packet acceptance, so everything here came from units that committed
    // (the units salvaged below never started).
    for (PagePtr& page :
         DrainFullResultPages(&ir, &ip, /*flush_partial=*/true)) {
      SendResultPage(instr_id, std::move(page));
    }
    // Salvage the undelivered assignment, if one is pending.
    if (ip.assign.has_value()) {
      const IpRt::PendingAssign a = *ip.assign;
      ip.assign.reset();
      switch (a.kind) {
        case IpRt::PendingAssign::kUnary:
          ir.lost_units.emplace_back(a.slot, a.unit_idx);
          ir.outstanding_packets--;
          report_.faults.redispatches++;
          Tr(obs::TraceEventKind::kFaultRecovered, instr_id, ip_id, 0,
             "redispatch");
          break;
        case IpRt::PendingAssign::kJoin:
          NormalizeRequeuedOuter(&ir, a.unit_idx);
          ir.requeued_outers.emplace_back(a.unit_idx, ip.irc);
          ip.has_outer = false;
          report_.faults.redispatches++;
          Tr(obs::TraceEventKind::kFaultRecovered, instr_id, ip_id, 0,
             "redispatch");
          break;
        case IpRt::PendingAssign::kFlush:
          ir.unflushed--;
          break;
      }
    }
    // An outer page held mid-join resumes on a survivor with its IRC
    // progress intact (same machinery as processor reclamation).
    if (ip.has_outer) {
      NormalizeRequeuedOuter(&ir, ip.outer_idx);
      ir.requeued_outers.emplace_back(ip.outer_idx, ip.irc);
      report_.faults.redispatches++;
      Tr(obs::TraceEventKind::kFaultRecovered, instr_id, ip_id, 0,
         "redispatch");
    }
    auto it = std::find(ir.ips.begin(), ir.ips.end(), ip_id);
    if (it != ir.ips.end()) ir.ips.erase(it);
    ip.instr = -1;
    ip.busy = false;
    ip.flush_sent = false;
    ip.result_buf.reset();
    ip.has_outer = false;
    ip.irc.Resize(0);
    ip.pending_inner.clear();
    ip.awaiting_request = false;
    if (live_ips_ == 0) {
      Fail(Status::Unavailable("all instruction processors failed"));
    } else if (ir.phase == InstrPhase::kRunning) {
      DispatchWork(instr_id);
      MaybeFlush(instr_id);
    } else if (ir.phase == InstrPhase::kFlushing) {
      const bool agg_pending = ir.def->op == PlanOp::kAggregate &&
                               ir.agg != nullptr && !ir.agg_finished;
      if (agg_pending) {
        // The barrier processor died before materializing the groups;
        // the aggregate state lives at the instruction, so re-run the
        // finish flush on a fresh grant.
        ir.phase = InstrPhase::kRunning;
        report_.faults.redispatches++;
        Tr(obs::TraceEventKind::kFaultRecovered, instr_id, ip_id, 0,
           "redispatch");
        RequestIps(instr_id);
      } else if (ir.unflushed == 0) {
        FinishInstr(instr_id);
      }
    }
  } else if (live_ips_ == 0) {
    Fail(Status::Unavailable("all instruction processors failed"));
  }
  PumpPendingRequests();
}

void Sim::FailIc(int ic_id) {
  if (ic_id < 0 || ic_id >= static_cast<int>(ic_alive_.size()) ||
      !ic_alive_[static_cast<size_t>(ic_id)]) {
    return;
  }
  ic_alive_[static_cast<size_t>(ic_id)] = 0;
  live_ics_--;
  report_.faults.injected++;
  report_.faults.ic_failures++;
  Tr(obs::TraceEventKind::kFaultInjected, -1, ic_id, 0, "ic-failure");
  if (live_ics_ == 0) {
    eq_.ScheduleAfter(injector_.plan().detection_timeout, [this] {
      Fail(Status::Unavailable("all instruction controllers failed"));
    });
    return;
  }
  // The MC notices the dead station after its status-poll period and
  // re-homes the IC's instructions to a survivor.
  eq_.ScheduleAfter(injector_.plan().detection_timeout,
                    [this, ic_id] { RehomeIc(ic_id); });
}

void Sim::RehomeIc(int ic_id) {
  int replacement = -1;
  for (size_t i = 0; i < ic_alive_.size(); ++i) {
    if (ic_alive_[i]) {
      replacement = static_cast<int>(i);
      break;
    }
  }
  if (replacement < 0) return;  // All dead; clean failure already queued.
  for (size_t i = 0; i < instrs_.size(); ++i) {
    InstrRt& ir = instrs_[i];
    if (ir.ic != ic_id || ir.phase == InstrPhase::kFinished) continue;
    // Control message over the inner ring per moved instruction. The
    // replacement's local memory starts cold for these pages: EnsureLocal
    // re-fetches them through the storage hierarchy as they are needed.
    ir.ic = replacement;
    report_.faults.instructions_rehomed++;
    Tr(obs::TraceEventKind::kFaultRecovered, static_cast<int>(i), replacement,
       0, "rehome");
    report_.control_packets++;
    (void)SendInner(kControlBytes);
  }
}

void Sim::InjectCacheStall(SimTime duration) {
  report_.faults.injected++;
  report_.faults.cache_stalls++;
  Tr(obs::TraceEventKind::kFaultInjected, -1, -1, 0, "cache-stall");
  report_.faults.cache_stall_time += duration;
  cache_stall_until_ = std::max(cache_stall_until_, eq_.now() + duration);
}

// ---------------------------------------------------------------------------
// Kernels at the IPs (execution-driven)
// ---------------------------------------------------------------------------

Status Sim::AppendResultTuple(InstrRt* ir, IpRt* ip, Slice tuple,
                              std::vector<PagePtr>* full) {
  const Slice parts[1] = {tuple};
  return AppendResultTupleParts(ir, ip, parts, 1, full);
}

Status Sim::AppendResultTupleParts(InstrRt* ir, IpRt* ip, const Slice* parts,
                                   size_t n, std::vector<PagePtr>* full) {
  if (ip->result_buf == nullptr) {
    const int unit = MachineUnitBytes(ir->def->output_schema);
    DFDB_ASSIGN_OR_RETURN(
        Page page,
        Page::Create(0, std::max(1, ir->def->output_schema.tuple_width()),
                     unit));
    ip->result_buf = std::make_unique<Page>(std::move(page));
  }
  DFDB_RETURN_IF_ERROR(ip->result_buf->AppendParts(parts, n));
  if (ip->result_buf->full()) {
    full->push_back(SealPage(std::move(*ip->result_buf)));
    ip->result_buf.reset();
  }
  return Status::OK();
}

std::vector<PagePtr> Sim::DrainFullResultPages(InstrRt* ir, IpRt* ip,
                                               bool flush_partial) {
  (void)ir;
  std::vector<PagePtr> out;
  if (flush_partial && ip->result_buf != nullptr && !ip->result_buf->empty()) {
    out.push_back(SealPage(std::move(*ip->result_buf)));
    ip->result_buf.reset();
  }
  return out;
}

StatusOr<std::pair<std::vector<PagePtr>, int64_t>> Sim::RunKernel(
    InstrRt* ir, IpRt* ip, int slot, const Page& in, const Page* inner,
    int partition) {
  std::vector<PagePtr> full;
  struct Sink final : public PageSink {
    Sim* sim;
    InstrRt* ir;
    IpRt* ip;
    std::vector<PagePtr>* full;
    int64_t bytes = 0;
    Status Emit(Slice tuple) override {
      bytes += static_cast<int64_t>(tuple.size());
      return sim->AppendResultTuple(ir, ip, tuple, full);
    }
    Status EmitParts(const Slice* parts, size_t n) override {
      for (size_t k = 0; k < n; ++k) {
        bytes += static_cast<int64_t>(parts[k].size());
      }
      return sim->AppendResultTupleParts(ir, ip, parts, n, full);
    }
  };
  Sink sink;
  sink.sim = this;
  sink.ir = ir;
  sink.ip = ip;
  sink.full = &full;

  const MachineInstruction& def = *ir->def;
  const Schema& in_schema =
      def.operands[static_cast<size_t>(slot)].schema;
  Status s = Status::OK();
  switch (def.op) {
    case PlanOp::kRestrict:
      if (!ir->compile_tried) {
        ir->compile_tried = true;
        auto compiled =
            CompiledPredicate::Compile(*def.node->predicate, in_schema);
        if (compiled.ok()) {
          ir->compiled_pred.emplace(*std::move(compiled));
        } else {
          kernel_stats_.compile_fallbacks.fetch_add(1,
                                                    std::memory_order_relaxed);
        }
      }
      if (ir->compiled_pred.has_value()) {
        s = RestrictPage(*ir->compiled_pred, in, &sink, &kernel_stats_);
      } else {
        kernel_stats_.interpreted_pages.fetch_add(1, std::memory_order_relaxed);
        s = RestrictPage(in_schema, *def.node->predicate, in, &sink);
      }
      break;
    case PlanOp::kProject: {
      std::vector<int> indices;
      for (const std::string& name : def.node->columns) {
        auto idx = in_schema.ColumnIndex(name);
        if (!idx.ok()) {
          s = idx.status();
          break;
        }
        indices.push_back(*idx);
      }
      if (!s.ok()) break;
      if (!def.node->dedup) {
        s = ProjectPage(in_schema, indices, in, &sink);
      } else if (IsParallelProject(*ir)) {
        // Section 5.0 parallel project: this IP owns one hash partition
        // and emits only first-seen tuples of that partition.
        const int parts = PartitionsOf(*ir);
        if (ir->pp_partitions.empty()) {
          ir->pp_partitions.resize(static_cast<size_t>(parts));
        }
        DuplicateEliminator& mine =
            ir->pp_partitions[static_cast<size_t>(partition)];
        std::string projected;
        for (int i = 0; i < in.num_tuples() && s.ok(); ++i) {
          ProjectTupleInto(in_schema, in.tuple(i), indices, &projected);
          if (DedupPartition(Slice(projected), parts) != partition) continue;
          if (mine.Insert(Slice(projected))) {
            s = sink.Emit(Slice(projected));
          }
        }
      } else {
        std::string projected;
        for (int i = 0; i < in.num_tuples() && s.ok(); ++i) {
          ProjectTupleInto(in_schema, in.tuple(i), indices, &projected);
          if (ir->dedup.Insert(Slice(projected))) {
            s = sink.Emit(Slice(projected));
          }
        }
      }
      break;
    }
    case PlanOp::kJoin:
      if (!ir->compile_tried) {
        ir->compile_tried = true;
        auto compiled = CompiledJoinPredicate::Compile(
            *def.node->predicate, def.operands[0].schema,
            def.operands[1].schema);
        if (compiled.ok()) {
          ir->compiled_join.emplace(*std::move(compiled));
        } else {
          kernel_stats_.compile_fallbacks.fetch_add(1,
                                                    std::memory_order_relaxed);
        }
      }
      if (ir->compiled_join.has_value()) {
        s = JoinPages(*ir->compiled_join, in, *inner, &ir->join_scratch, &sink,
                      &kernel_stats_);
      } else {
        kernel_stats_.interpreted_pages.fetch_add(1, std::memory_order_relaxed);
        kernel_stats_.nested_joins.fetch_add(1, std::memory_order_relaxed);
        s = JoinPages(def.operands[0].schema, def.operands[1].schema,
                      *def.node->predicate, in, *inner, &sink);
      }
      break;
    case PlanOp::kUnion:
      if (def.node->bag_semantics) {
        s = CopyPage(in, &sink);
      } else {
        for (int i = 0; i < in.num_tuples() && s.ok(); ++i) {
          if (ir->dedup.Insert(in.tuple(i))) {
            s = sink.Emit(in.tuple(i));
          }
        }
      }
      break;
    case PlanOp::kDifference:
      if (slot == 1) {
        ir->diff.ConsumeRight(in);
      } else {
        s = ir->diff.ConsumeLeft(in, &sink);
      }
      break;
    case PlanOp::kAggregate:
      s = ir->agg->Consume(in);
      break;
    case PlanOp::kAppend: {
      auto file = storage_->GetHeapFile(def.node->relation);
      if (!file.ok()) {
        s = file.status();
      } else {
        s = (*file)->AppendPage(in);
      }
      break;
    }
    case PlanOp::kDelete: {
      if (!ir->compile_tried) {
        ir->compile_tried = true;
        auto compiled =
            CompiledPredicate::Compile(*def.node->predicate, in_schema);
        if (compiled.ok()) ir->compiled_pred.emplace(*std::move(compiled));
      }
      if (ir->compiled_pred.has_value()) {
        ir->delete_matches += CountMatches(*ir->compiled_pred, in,
                                           &kernel_stats_);
      } else {
        auto matched =
            CountMatches(in_schema, *def.node->predicate, in, &kernel_stats_);
        if (!matched.ok()) {
          s = matched.status();
        } else {
          ir->delete_matches += *matched;
        }
      }
      break;
    }
    default:
      s = Status::Internal("unsupported machine op");
  }
  if (!s.ok()) return s;
  return std::make_pair(std::move(full), sink.bytes);
}

// ---------------------------------------------------------------------------
// Run loop
// ---------------------------------------------------------------------------

Status Sim::Run() {
  ArmFaults();
  SubmitAll();
  report_.events = eq_.RunToCompletion(opt_.max_events);
  if (!error_.ok()) return error_;
  if (!eq_.empty()) {
    return Status::ResourceExhausted("simulation exceeded max_events");
  }
  if (active_queries_ > 0 || !waiting_queries_.empty()) {
    return Status::Internal("simulation drained with unfinished queries\n" +
                            DebugStates());
  }
  report_.makespan = eq_.now();
  if (injector_.active()) {
    // Trailing fault events and watchdogs advance the clock past the last
    // completion; the makespan is when the work actually finished.
    SimTime last;
    for (SimTime t : report_.query_completion) last = std::max(last, t);
    report_.makespan = last;
  }
  for (size_t qi = 0; qi < report_.results.size(); ++qi) {
    report_.results[qi].set_schema(prog_.plans[qi]->output_schema);
  }
  report_.kernel = kernel_stats_.Snapshot();
  report_.trace = trace_.Finish();
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

MachineSimulator::MachineSimulator(StorageEngine* storage,
                                   MachineOptions options)
    : storage_(storage), options_(options) {
  DFDB_CHECK(storage != nullptr);
}

StatusOr<MachineReport> MachineSimulator::Run(
    const std::vector<const PlanNode*>& queries) {
  DFDB_ASSIGN_OR_RETURN(MachineProgram program,
                        CompileProgram(storage_->catalog(), queries,
                                       options_.pipeline));
  Sim sim(storage_, options_, std::move(program), queries.size());
  DFDB_RETURN_IF_ERROR(sim.Run());
  return sim.TakeReport();
}

}  // namespace dfdb

/// \file packet.h
/// \brief The packet formats of Figures 4.3, 4.4 and 4.5.
///
/// Packets are the currency of the outer ring. Their byte sizes drive the
/// ring-bandwidth model, and Serialize/Deserialize establish that the field
/// layouts are complete (tested by round-trip).

#ifndef DFDB_MACHINE_PACKET_H_
#define DFDB_MACHINE_PACKET_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "storage/page.h"

namespace dfdb {

/// Opcode field of an instruction packet.
enum class PacketOpcode : uint8_t {
  kRestrict = 1,
  kJoin = 2,
  kProject = 3,
  kUnion = 4,
  kDifference = 5,
  kAggregate = 6,
  kAppend = 7,
  kDelete = 8,
};

/// \brief One source operand of an instruction packet: relation identity,
/// tuple format, and the data page itself (Figure 4.3's repeated group).
struct PacketOperand {
  std::string relation_name;
  uint32_t tuple_length = 0;
  /// The operand data page (optional for control-only instructions).
  std::optional<Page> page;

  /// Serialized size: name(8) + tuple len/format(4) + page length(4) + data.
  int64_t WireBytes() const;
};

/// \brief Figure 4.3: the instruction packet an IC sends to an IP.
struct InstructionPacket {
  uint32_t ip_id = 0;
  uint64_t query_id = 0;
  uint32_t ic_id_sender = 0;
  uint32_t ic_id_destination = 0;
  bool flush_when_done = false;
  PacketOpcode opcode = PacketOpcode::kRestrict;
  std::string result_relation_name;
  uint32_t result_tuple_length = 0;
  std::vector<PacketOperand> operands;

  /// Total bytes on the wire, including the packet-length field.
  int64_t WireBytes() const;

  std::string Serialize() const;
  static StatusOr<InstructionPacket> Deserialize(Slice bytes);
};

/// \brief Figure 4.4: a result packet (one page of result tuples) sent from
/// an IP to the IC controlling the destination instruction.
struct ResultPacket {
  uint32_t ic_id = 0;
  std::string relation_name;
  std::optional<Page> page;

  int64_t WireBytes() const;
  std::string Serialize() const;
  static StatusOr<ResultPacket> Deserialize(Slice bytes);
};

/// Message kinds carried by control packets.
enum class ControlMessage : uint8_t {
  kDone = 1,           ///< IP finished its packet, ready for more work.
  kRequestPage = 2,    ///< IP requests inner-relation page (join).
  kReleaseIp = 3,      ///< IC returns an IP to the MC pool.
  kRequestIps = 4,     ///< IC asks the MC for processors.
  kOperandComplete = 5,///< Producing instruction finished (last page sent).
};

/// \brief Figure 4.5: small fixed-size control packet.
struct ControlPacket {
  uint32_t ic_id = 0;
  uint32_t ip_id_sender = 0;
  ControlMessage message = ControlMessage::kDone;
  /// Payload for kRequestPage (page index) or kRequestIps (count).
  uint32_t argument = 0;

  int64_t WireBytes() const;
  std::string Serialize() const;
  static StatusOr<ControlPacket> Deserialize(Slice bytes);
};

}  // namespace dfdb

#endif  // DFDB_MACHINE_PACKET_H_

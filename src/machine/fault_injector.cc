#include "machine/fault_injector.h"

#include <algorithm>

#include "common/random.h"
#include "common/string_util.h"

namespace dfdb {

std::string_view FaultTypeToString(FaultType type) {
  switch (type) {
    case FaultType::kKillIp:
      return "kill-ip";
    case FaultType::kFailIc:
      return "fail-ic";
    case FaultType::kDropPacket:
      return "drop-packet";
    case FaultType::kCorruptPacket:
      return "corrupt-packet";
    case FaultType::kStallCache:
      return "stall-cache";
  }
  return "?";
}

namespace {

FaultPlan SingleEvent(FaultEvent ev) {
  FaultPlan plan;
  plan.events.push_back(ev);
  return plan;
}

}  // namespace

FaultPlan FaultPlan::KillIp(int ip, SimTime at) {
  FaultEvent ev;
  ev.type = FaultType::kKillIp;
  ev.target = ip;
  ev.at = at;
  return SingleEvent(ev);
}

FaultPlan FaultPlan::FailIc(int ic, SimTime at) {
  FaultEvent ev;
  ev.type = FaultType::kFailIc;
  ev.target = ic;
  ev.at = at;
  return SingleEvent(ev);
}

FaultPlan FaultPlan::DropPackets(SimTime at, uint64_t count) {
  FaultEvent ev;
  ev.type = FaultType::kDropPacket;
  ev.at = at;
  ev.count = count;
  return SingleEvent(ev);
}

FaultPlan FaultPlan::CorruptPackets(SimTime at, uint64_t count) {
  FaultEvent ev;
  ev.type = FaultType::kCorruptPacket;
  ev.at = at;
  ev.count = count;
  return SingleEvent(ev);
}

FaultPlan FaultPlan::StallCache(SimTime at, SimTime duration) {
  FaultEvent ev;
  ev.type = FaultType::kStallCache;
  ev.at = at;
  ev.duration = duration;
  return SingleEvent(ev);
}

FaultPlan FaultPlan::RandomStorm(uint64_t seed, int ip_kills,
                                 int packet_faults, SimTime horizon) {
  FaultPlan plan;
  Random rng(seed);
  const uint64_t span =
      static_cast<uint64_t>(std::max<int64_t>(1, horizon.nanos()));
  for (int i = 0; i < ip_kills; ++i) {
    FaultEvent ev;
    ev.type = FaultType::kKillIp;
    ev.at = SimTime::Nanos(static_cast<int64_t>(rng.Uniform(span)));
    ev.target = -1;  // Round-robin over the machine's IPs.
    plan.events.push_back(ev);
  }
  for (int i = 0; i < packet_faults; ++i) {
    FaultEvent ev;
    ev.type = rng.Bernoulli(0.5) ? FaultType::kDropPacket
                                 : FaultType::kCorruptPacket;
    ev.at = SimTime::Nanos(static_cast<int64_t>(rng.Uniform(span)));
    ev.count = 1 + rng.Uniform(3);
    plan.events.push_back(ev);
  }
  return plan;
}

std::string FaultPlan::ToString() const {
  std::string out = StrFormat(
      "plan{timeout=%s backoff=%s retries=%d events=[",
      detection_timeout.ToString().c_str(), retry_backoff.ToString().c_str(),
      max_retries);
  for (size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& ev = events[i];
    if (i > 0) out += " ";
    out += StrFormat("%s@%s/t%d",
                     std::string(FaultTypeToString(ev.type)).c_str(),
                     ev.at.ToString().c_str(), ev.target);
  }
  out += "]}";
  return out;
}

std::string FaultStats::ToString() const {
  return StrFormat(
      "faults=%llu (ip=%llu ic=%llu drop=%llu corrupt=%llu stall=%llu) "
      "timeouts=%llu retries=%llu redispatch=%llu rehomed=%llu "
      "backoff=%s stalled=%s",
      static_cast<unsigned long long>(injected),
      static_cast<unsigned long long>(ip_kills),
      static_cast<unsigned long long>(ic_failures),
      static_cast<unsigned long long>(packets_dropped),
      static_cast<unsigned long long>(packets_corrupted),
      static_cast<unsigned long long>(cache_stalls),
      static_cast<unsigned long long>(timeouts),
      static_cast<unsigned long long>(retries),
      static_cast<unsigned long long>(redispatches),
      static_cast<unsigned long long>(instructions_rehomed),
      retry_ticks_lost.ToString().c_str(),
      cache_stall_time.ToString().c_str());
}

FaultInjector::FaultInjector(const FaultPlan& plan)
    : plan_(plan), active_(!plan.events.empty()) {
  for (const FaultEvent& ev : plan_.events) {
    if (ev.type == FaultType::kDropPacket ||
        ev.type == FaultType::kCorruptPacket) {
      packet_faults_.push_back(
          {ev.type, ev.at, std::max<uint64_t>(1, ev.count)});
    }
  }
  // Arm in schedule order; ties keep plan order (stable), so the packet
  // fate sequence is a pure function of the plan.
  std::stable_sort(packet_faults_.begin(), packet_faults_.end(),
                   [](const ArmedPacketFault& a, const ArmedPacketFault& b) {
                     return a.at < b.at;
                   });
}

FaultInjector::PacketFate FaultInjector::OnAssignmentPacket(
    SimTime now, FaultStats* stats) {
  for (ArmedPacketFault& pf : packet_faults_) {
    if (pf.remaining == 0 || pf.at > now) continue;
    --pf.remaining;
    stats->injected++;
    if (pf.type == FaultType::kDropPacket) {
      stats->packets_dropped++;
      return PacketFate::kDrop;
    }
    stats->packets_corrupted++;
    return PacketFate::kCorrupt;
  }
  return PacketFate::kDeliver;
}

}  // namespace dfdb

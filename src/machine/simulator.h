/// \file simulator.h
/// \brief Execution-driven discrete-event simulator of the Section 4
/// ring-based data-flow database machine.
///
/// The simulated machine is the paper's Figure 4.1 configuration:
///
///   - a master controller (MC) that admits queries under concurrency
///     control, distributes instructions to ICs, and arbitrates the IP pool;
///   - instruction controllers (ICs) forming the distributed arbitration
///     network: they stage operand pages through the three-level storage
///     hierarchy, enable instructions per the chosen granularity, and drive
///     the IPs with instruction packets;
///   - instruction processors (IPs) executing the packets — including the
///     Section 4.2 broadcast nested-loops join with IRC vectors — and
///     returning result/control packets;
///   - an inner control ring (MC<->IC) and an outer data ring (IC<->IP),
///     both modelled as DLCN shift-register-insertion loops;
///   - a multiport CCD disk cache and IBM 3330 drives.
///
/// The simulator is execution-driven: IPs run the real operator kernels on
/// real pages, so results are exact and verifiable against the reference
/// executor, while all timing comes from the device models.

#ifndef DFDB_MACHINE_SIMULATOR_H_
#define DFDB_MACHINE_SIMULATOR_H_

#include <vector>

#include "common/macros.h"
#include "common/statusor.h"
#include "machine/instruction.h"
#include "machine/report.h"
#include "ra/plan.h"
#include "storage/storage_engine.h"

namespace dfdb {

/// \brief Simulates a batch of queries on the configured machine.
class MachineSimulator {
 public:
  MachineSimulator(StorageEngine* storage, MachineOptions options);
  DFDB_DISALLOW_COPY(MachineSimulator);

  /// Runs \p queries to completion on a fresh machine instance and reports
  /// timing, per-level byte traffic, and the (real) query results.
  StatusOr<MachineReport> Run(const std::vector<const PlanNode*>& queries);

 private:
  StorageEngine* storage_;
  MachineOptions options_;
};

}  // namespace dfdb

#endif  // DFDB_MACHINE_SIMULATOR_H_

/// \file instruction.h
/// \brief Compilation of query trees into machine instructions.
///
/// In the Section 4 machine, scans are not separate instructions: "If the
/// instruction's operand(s) are source relations in the database, then the
/// instruction is ready to be executed. In this case the MC will also send
/// to the IC a page table describing each operand." Each non-scan plan node
/// therefore becomes one MachineInstruction whose operands are either base
/// relations (page tables) or the outputs of other instructions.

#ifndef DFDB_MACHINE_INSTRUCTION_H_
#define DFDB_MACHINE_INSTRUCTION_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/statusor.h"
#include "engine/exec_options.h"
#include "ra/analyzer.h"
#include "ra/plan.h"

namespace dfdb {

/// \brief One operand of a machine instruction.
struct MachineOperand {
  bool is_base = false;
  /// Base relation name (is_base).
  std::string base_relation;
  /// Producing instruction index in the program (!is_base).
  int producer = -1;
  /// Operand tuple schema.
  Schema schema;
  /// Pipeline fusion: a restrict folded into this operand. The IC applies
  /// the predicate while compacting staged pages into machine units, so the
  /// restrict never occupies an IP and its result pages never ride the ring.
  /// Points into the program's plan clones; null = unfiltered operand.
  const PlanNode* filter = nullptr;
};

/// \brief One relational-algebra instruction as the machine executes it.
struct MachineInstruction {
  int id = -1;
  uint64_t query_id = 0;
  /// Position of the query in the submitted batch.
  size_t query_index = 0;
  PlanOp op = PlanOp::kRestrict;
  /// The resolved plan node (predicates, columns, schemas). Owned by the
  /// program's plan clones.
  const PlanNode* node = nullptr;
  std::vector<MachineOperand> operands;
  /// Consuming instruction (-1 = results go to the host via the MC).
  int consumer = -1;
  /// Operand slot at the consumer.
  int consumer_slot = 0;
  Schema output_schema;
  /// Stateful operators (dedup project, aggregate, difference, set union)
  /// run as barriers on a single IP regardless of granularity — the paper
  /// explicitly leaves parallel project/duplicate elimination as future
  /// work (Section 5.0).
  bool barrier = false;
};

/// \brief Per-edge pipeline decisions taken at compile time
/// (machine.pipeline.*).
struct PipelineCompileStats {
  uint64_t fused_edges = 0;         ///< Producers folded into an operand.
  uint64_t materialized_edges = 0;  ///< Edges left as instructions.
  /// Edges the plan marked fused but the compiler could not fold (producer
  /// not a restrict-over-base, or the predicate refused compilation).
  uint64_t fallbacks = 0;
};

/// \brief A compiled batch of queries.
struct MachineProgram {
  std::vector<std::unique_ptr<PlanNode>> plans;  ///< Resolved clones (owned).
  std::vector<QueryAnalysis> analyses;           ///< Per query.
  std::vector<MachineInstruction> instructions;
  /// Root instruction id per query (results to host).
  std::vector<int> roots;
  PipelineCompileStats pipeline;
};

/// \brief Compiles \p queries (cloned and resolved against \p catalog).
///
/// A bare-scan query is wrapped in an always-true restrict so that it is an
/// instruction. Queries are numbered by position.
///
/// \p pipeline controls per-edge fusion: a kRestrict producer over a base
/// relation whose predicate compiles is folded into the consumer's operand
/// (MachineOperand::filter) when the plan marks the edge (kHonorPlan) or
/// unconditionally (kForceFuse); kForceMaterialize folds nothing.
StatusOr<MachineProgram> CompileProgram(
    const Catalog& catalog, const std::vector<const PlanNode*>& queries,
    PipelinePolicy pipeline = PipelinePolicy::kHonorPlan);

}  // namespace dfdb

#endif  // DFDB_MACHINE_INSTRUCTION_H_

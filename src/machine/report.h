/// \file report.h
/// \brief Machine-simulation configuration and measurement report.

#ifndef DFDB_MACHINE_REPORT_H_
#define DFDB_MACHINE_REPORT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "engine/exec_options.h"
#include "engine/query_result.h"
#include "index/index_stats.h"
#include "machine/fault_injector.h"
#include "obs/run_report.h"
#include "operators/kernels.h"
#include "storage/device_model.h"
#include "storage/pushdown.h"

namespace dfdb {

/// \brief Simulation knobs beyond the hardware configuration.
struct MachineOptions {
  MachineConfig config;
  Granularity granularity = Granularity::kPage;
  /// Requirement 4 (Section 4.0): broadcast inner-relation pages to every
  /// joining IP in one ring insertion. Disabled = unicast per IP (ablation).
  bool broadcast_join = true;
  /// Section 5.0 future work: "route some of the data pages which are
  /// produced by IPs directly from one IP to another without first sending
  /// the page to an IC". When enabled, result pages bound for a streaming
  /// (non-join, non-barrier) consumer skip the IC: the controlling IC gets
  /// a notification and later dispatches a header-only instruction packet,
  /// so the page crosses the outer ring once instead of twice.
  bool ip_direct_routing = false;
  /// The paper's acknowledged cost: "increased IP complexity". Extra
  /// per-packet processing charged at the consuming IP for directly routed
  /// pages (buffer management it would otherwise not do).
  SimTime direct_routing_overhead = SimTime::Micros(200);
  /// Section 5.0 future work: a parallel algorithm for the project
  /// operator with duplicate elimination (the paper: "we have not yet
  /// developed an algorithm for which a high degree of parallelism can be
  /// maintained"). When enabled, dedup-projects run at page granularity
  /// across multiple IPs: every input page is broadcast once; IP i keeps
  /// the duplicate-elimination state for hash partition i and emits only
  /// its partition's first-seen tuples. Disabled = the paper's default
  /// (single-IP barrier).
  bool parallel_project = false;
  /// Partition count for parallel project (also its maximum IP
  /// parallelism).
  int project_partitions = 8;
  /// Per-edge pipeline-vs-materialize policy (see CompileProgram): folded
  /// restricts filter at the IC during staging compaction instead of
  /// occupying IPs as separate instructions.
  PipelinePolicy pipeline = PipelinePolicy::kHonorPlan;
  /// Per-scan access-path policy (honor zone-map / grid-file marks vs
  /// force full staging).
  IndexPolicy index = IndexPolicy::kHonorPlan;
  /// Per-scan near-data pushdown policy: honor PlanNode::pushdown marks
  /// (the compiled restrict runs during cache->IC staging, only survivors
  /// cross the rings) vs force the raw staging path (ablation baseline).
  PushdownPolicy pushdown = PushdownPolicy::kHonorPlan;
  /// Safety valve against runaway simulations.
  uint64_t max_events = 500000000;
  /// Deterministic fault schedule (empty = perfect hardware). With a
  /// non-empty plan the ICs keep assignments pending until acknowledged,
  /// time out lost ones, retransmit with backoff, and re-dispatch units
  /// stranded on dead processors to survivors.
  FaultPlan fault_plan;
  /// Record a per-run obs::Trace in event order (sim-time timestamps, so
  /// two identically-seeded runs produce byte-identical traces). Off by
  /// default: tracing costs one branch per event site.
  bool enable_trace = false;
};

/// \brief Bytes crossing each level of the machine (Figure 4.2's y-axis is
/// these totals divided by the execution time).
struct LevelBytes {
  uint64_t outer_ring = 0;    ///< IC <-> IP instruction/result/control.
  uint64_t inner_ring = 0;    ///< MC <-> IC control.
  uint64_t cache_to_ic = 0;   ///< Disk cache -> IC local memory.
  uint64_t ic_to_cache = 0;   ///< IC local memory -> disk cache (evictions).
  uint64_t disk_read = 0;     ///< Mass storage -> disk cache.
  uint64_t disk_write = 0;    ///< Disk cache -> mass storage.
};

/// \brief Everything measured by one simulation run.
struct MachineReport {
  SimTime makespan;
  std::vector<SimTime> query_completion;  ///< Per query, submission order.
  LevelBytes bytes;
  uint64_t instruction_packets = 0;
  uint64_t result_packets = 0;
  uint64_t control_packets = 0;
  uint64_t broadcasts = 0;
  /// Result pages routed IP -> IP without passing through an IC.
  uint64_t direct_routes = 0;
  uint64_t events = 0;
  SimTime ip_busy_total;
  int num_ips = 0;
  /// Injected faults and the recovery work they caused.
  FaultStats faults;
  /// Pipeline-fusion outcomes (machine.pipeline.*): edges folded at compile
  /// time plus the staging-side filtering work they caused.
  uint64_t pipeline_fused_edges = 0;
  uint64_t pipeline_materialized_edges = 0;
  /// Operand machine units delivered pre-filtered — units the folded
  /// restrict would otherwise have produced, shipped, and repacked.
  uint64_t pipeline_pages_elided = 0;
  /// Raw pages filtered during staging compaction.
  uint64_t pipeline_fused_pages = 0;
  /// Marked edges the compiler could not fold.
  uint64_t pipeline_runtime_fallbacks = 0;
  /// Compiled-vs-interpreted kernel split at the IPs (machine.kernel.*).
  KernelStatsSnapshot kernel;
  /// Access-path pruning outcomes during IC staging (machine.index.*):
  /// pages never fetched into the ring because a zone map or grid-file
  /// probe proved them irrelevant.
  IndexPruneCounters index;
  /// Near-data pushdown outcomes during IC staging (machine.pushdown.*):
  /// raw pages filtered at the cache port, tuples in/out, and the
  /// cache->IC transfer bytes elided because only survivors crossed.
  PushdownCounters pushdown;
  /// Root outputs with real tuples (the simulator is execution-driven).
  std::vector<QueryResult> results;
  /// Event trace, or nullptr unless MachineOptions::enable_trace was set.
  std::shared_ptr<const obs::Trace> trace;

  double OuterRingBps() const {
    const double s = makespan.ToSecondsF();
    return s > 0 ? static_cast<double>(bytes.outer_ring) * 8.0 / s : 0.0;
  }
  double InnerRingBps() const {
    const double s = makespan.ToSecondsF();
    return s > 0 ? static_cast<double>(bytes.inner_ring) * 8.0 / s : 0.0;
  }
  double CacheBps() const {
    const double s = makespan.ToSecondsF();
    return s > 0 ? static_cast<double>(bytes.cache_to_ic + bytes.ic_to_cache) *
                       8.0 / s
                 : 0.0;
  }
  double DiskBps() const {
    const double s = makespan.ToSecondsF();
    return s > 0 ? static_cast<double>(bytes.disk_read + bytes.disk_write) *
                       8.0 / s
                 : 0.0;
  }
  double IpUtilization() const {
    const double denom = makespan.ToSecondsF() * num_ips;
    return denom > 0 ? ip_busy_total.ToSecondsF() / denom : 0.0;
  }

  /// Backend-agnostic view (counters under `machine.*`); simulated time is
  /// deterministic, so the report's JSON is byte-identical across
  /// identically-seeded runs.
  obs::RunReport ToReport() const;

  std::string ToString() const;
};

/// Registers LevelBytes under the observability naming scheme
/// (`machine.outer_ring_bytes`, `machine.disk_read_bytes`, ...).
void RegisterMetrics(const LevelBytes& bytes, obs::MetricsRegistry* registry);

/// Registers FaultStats under `machine.faults.*`.
void RegisterMetrics(const FaultStats& faults, obs::MetricsRegistry* registry);

}  // namespace dfdb

#endif  // DFDB_MACHINE_REPORT_H_

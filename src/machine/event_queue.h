/// \file event_queue.h
/// \brief Deterministic discrete-event simulation core.

#ifndef DFDB_MACHINE_EVENT_QUEUE_H_
#define DFDB_MACHINE_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/macros.h"
#include "common/sim_time.h"

namespace dfdb {

/// \brief Time-ordered event queue. Ties break by insertion order, so a
/// simulation is a pure function of its inputs.
class EventQueue {
 public:
  EventQueue() = default;
  DFDB_DISALLOW_COPY(EventQueue);

  /// Current simulated time (the timestamp of the last dispatched event).
  SimTime now() const { return now_; }

  /// Schedules \p fn at absolute time \p at (>= now()).
  void ScheduleAt(SimTime at, std::function<void()> fn) {
    heap_.push(Event{at < now_ ? now_ : at, next_seq_++, std::move(fn)});
  }

  /// Schedules \p fn after \p delay.
  void ScheduleAfter(SimTime delay, std::function<void()> fn) {
    ScheduleAt(now_ + delay, std::move(fn));
  }

  /// Runs events until the queue drains (or \p max_events fire).
  /// Returns the number of events dispatched.
  uint64_t RunToCompletion(uint64_t max_events = UINT64_MAX) {
    uint64_t dispatched = 0;
    while (!heap_.empty() && dispatched < max_events) {
      Event ev = heap_.top();
      heap_.pop();
      now_ = ev.time;
      ++dispatched;
      ev.fn();
    }
    return dispatched;
  }

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  SimTime now_;
  uint64_t next_seq_ = 0;
};

}  // namespace dfdb

#endif  // DFDB_MACHINE_EVENT_QUEUE_H_

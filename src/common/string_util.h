/// \file string_util.h
/// \brief Small string formatting helpers used by reports and benchmarks.

#ifndef DFDB_COMMON_STRING_UTIL_H_
#define DFDB_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dfdb {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// "12.3 KB", "4.5 MB", ... (powers of 1024).
std::string HumanBytes(int64_t bytes);

/// "12.34 Mbps" style rate rendering (powers of 1000, bits).
std::string HumanBitsPerSecond(double bps);

/// Splits on a delimiter; empty fields preserved.
std::vector<std::string> SplitString(std::string_view s, char delim);

/// Joins with a delimiter.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view delim);

/// ASCII lower-casing.
std::string ToLower(std::string_view s);

}  // namespace dfdb

#endif  // DFDB_COMMON_STRING_UTIL_H_

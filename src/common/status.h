/// \file status.h
/// \brief Error handling for dfdb: a RocksDB/Arrow-style Status value.
///
/// All fallible dfdb APIs return Status (or StatusOr<T>) instead of throwing
/// exceptions. A Status is cheap to copy in the OK case (no allocation) and
/// carries a code plus a human-readable message otherwise.

#ifndef DFDB_COMMON_STATUS_H_
#define DFDB_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace dfdb {

/// \brief Machine-readable error categories.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kCorruption = 4,
  kIOError = 5,
  kNotSupported = 6,
  kFailedPrecondition = 7,
  kOutOfRange = 8,
  kResourceExhausted = 9,
  kAborted = 10,
  kInternal = 11,
  kCancelled = 12,
  kUnavailable = 13,
};

/// \brief Returns a stable, human-readable name for a status code.
std::string_view StatusCodeToString(StatusCode code);

/// \brief Result of a fallible operation: a code plus an optional message.
///
/// The OK state is represented by a null internal pointer so that returning
/// Status::OK() never allocates.
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      state_ = std::make_unique<State>(State{code, std::move(msg)});
    }
  }

  Status(const Status& other) { CopyFrom(other); }
  Status& operator=(const Status& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// \name Factory helpers, one per code.
  /// @{
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  /// @}

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  /// Message text; empty for OK.
  std::string_view message() const {
    return state_ ? std::string_view(state_->msg) : std::string_view();
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsNotSupported() const { return code() == StatusCode::kNotSupported; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsAborted() const { return code() == StatusCode::kAborted; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// \brief Returns a copy of this status with \p context prepended to the
  /// message, for adding call-site detail while propagating errors.
  Status WithContext(std::string_view context) const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }
  bool operator!=(const Status& other) const { return !(*this == other); }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };

  void CopyFrom(const Status& other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
  }

  std::unique_ptr<State> state_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

}  // namespace dfdb

#endif  // DFDB_COMMON_STATUS_H_

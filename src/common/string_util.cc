#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace dfdb {

std::string StrFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::string HumanBytes(int64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  if (u == 0) return StrFormat("%lld B", static_cast<long long>(bytes));
  return StrFormat("%.2f %s", v, units[u]);
}

std::string HumanBitsPerSecond(double bps) {
  const char* units[] = {"bps", "Kbps", "Mbps", "Gbps"};
  double v = bps;
  int u = 0;
  while (v >= 1000.0 && u < 3) {
    v /= 1000.0;
    ++u;
  }
  return StrFormat("%.2f %s", v, units[u]);
}

std::vector<std::string> SplitString(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view delim) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += delim;
    out += parts[i];
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

}  // namespace dfdb

#include "common/sim_time.h"

#include <cmath>
#include <cstdio>

namespace dfdb {

std::string SimTime::ToString() const {
  char buf[64];
  const double ns = static_cast<double>(ns_);
  if (ns_ == 0) {
    std::snprintf(buf, sizeof(buf), "0s");
  } else if (std::llabs(ns_) < 1000) {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(ns_));
  } else if (std::llabs(ns_) < 1000000) {
    std::snprintf(buf, sizeof(buf), "%.3fus", ns / 1e3);
  } else if (std::llabs(ns_) < 1000000000LL) {
    std::snprintf(buf, sizeof(buf), "%.3fms", ns / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", ns / 1e9);
  }
  return buf;
}

std::ostream& operator<<(std::ostream& os, SimTime t) {
  return os << t.ToString();
}

SimTime TransferTime(int64_t bytes, double bits_per_second) {
  if (bits_per_second <= 0.0) return SimTime::Zero();
  const double seconds = static_cast<double>(bytes) * 8.0 / bits_per_second;
  return SimTime(static_cast<int64_t>(std::ceil(seconds * 1e9)));
}

}  // namespace dfdb

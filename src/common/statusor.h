/// \file statusor.h
/// \brief StatusOr<T>: a Status or a value of type T.

#ifndef DFDB_COMMON_STATUSOR_H_
#define DFDB_COMMON_STATUSOR_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace dfdb {

/// \brief Holds either a non-OK Status or a value of type T.
///
/// Accessing the value of a non-OK StatusOr is a programming error and
/// asserts in debug builds (undefined in release), matching the Arrow
/// Result<T> contract.
template <typename T>
class StatusOr {
 public:
  using value_type = T;

  /// Constructs from a non-OK status. Passing an OK status is an error and
  /// is converted to Internal.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed with OK status but no value");
    }
  }

  /// Constructs from a value; the status is OK.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  StatusOr(const StatusOr&) = default;
  StatusOr(StatusOr&&) noexcept = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr& operator=(StatusOr&&) noexcept = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const& { return status_; }
  Status status() && { return std::move(status_); }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value if OK, otherwise \p default_value.
  T value_or(T default_value) const& {
    return ok() ? *value_ : std::move(default_value);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace dfdb

#endif  // DFDB_COMMON_STATUSOR_H_

/// \file hash.h
/// \brief 64-bit hashing for join/duplicate-elimination hash tables.

#ifndef DFDB_COMMON_HASH_H_
#define DFDB_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "common/slice.h"

namespace dfdb {

/// \brief Fowler–Noll–Vo 1a over arbitrary bytes, with a final avalanche
/// (murmur finalizer) so low bits are well mixed for power-of-two tables.
inline uint64_t Hash64(const void* data, size_t n, uint64_t seed = 0xcbf29ce484222325ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  // murmur3 fmix64 finalizer.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

inline uint64_t Hash64(const Slice& s, uint64_t seed = 0xcbf29ce484222325ULL) {
  return Hash64(s.data(), s.size(), seed);
}

/// Combines two hashes (boost::hash_combine style, 64-bit).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

}  // namespace dfdb

#endif  // DFDB_COMMON_HASH_H_

#include "common/status.h"

namespace dfdb {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  std::string msg(context);
  msg += ": ";
  msg += message();
  return Status(code(), std::move(msg));
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace dfdb

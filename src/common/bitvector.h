/// \file bitvector.h
/// \brief A dynamic bit vector.
///
/// Used for the IRC ("inner-relation control") vectors of Section 4.2 — one
/// bit per page of the inner relation, marking pages already joined — and
/// for page-table residency maps.

#ifndef DFDB_COMMON_BITVECTOR_H_
#define DFDB_COMMON_BITVECTOR_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace dfdb {

/// \brief Growable vector of bits with population count.
class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(size_t n, bool value = false) { Resize(n, value); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Grows (or shrinks) to \p n bits; new bits take \p value.
  void Resize(size_t n, bool value = false) {
    const size_t old_size = size_;
    size_ = n;
    words_.resize((n + 63) / 64, value ? ~uint64_t{0} : 0);
    if (value && old_size < n && old_size % 64 != 0) {
      // Set the tail bits of the word that was previously partial.
      words_[old_size / 64] |= ~uint64_t{0} << (old_size % 64);
    }
    ClearExcessBits();
  }

  bool Get(size_t i) const {
    assert(i < size_);
    return (words_[i / 64] >> (i % 64)) & 1;
  }

  void Set(size_t i, bool value = true) {
    assert(i < size_);
    if (value) {
      words_[i / 64] |= uint64_t{1} << (i % 64);
    } else {
      words_[i / 64] &= ~(uint64_t{1} << (i % 64));
    }
  }

  /// Sets every bit to zero (the paper's "zero its IRC vector").
  void ClearAll() {
    for (auto& w : words_) w = 0;
  }

  /// Number of set bits.
  size_t Count() const {
    size_t c = 0;
    for (uint64_t w : words_) c += static_cast<size_t>(__builtin_popcountll(w));
    return c;
  }

  bool AllSet() const { return Count() == size_; }
  bool NoneSet() const { return Count() == 0; }

  /// Index of the first zero bit, or size() if all bits are set. This is
  /// how an IP "scans its IRC vector ... to request those pages it missed".
  size_t FirstZero() const {
    for (size_t wi = 0; wi < words_.size(); ++wi) {
      uint64_t inv = ~words_[wi];
      if (wi == words_.size() - 1 && size_ % 64 != 0) {
        inv &= (uint64_t{1} << (size_ % 64)) - 1;
      }
      if (inv != 0) {
        const size_t bit = wi * 64 + static_cast<size_t>(__builtin_ctzll(inv));
        return bit < size_ ? bit : size_;
      }
    }
    return size_;
  }

 private:
  void ClearExcessBits() {
    if (size_ % 64 != 0 && !words_.empty()) {
      words_.back() &= (uint64_t{1} << (size_ % 64)) - 1;
    }
  }

  std::vector<uint64_t> words_;
  size_t size_ = 0;
};

}  // namespace dfdb

#endif  // DFDB_COMMON_BITVECTOR_H_

/// \file random.h
/// \brief Deterministic pseudo-random generation (xoshiro256**).
///
/// All workload generation and randomized testing in dfdb uses this PRNG so
/// that every experiment is reproducible from a single seed.

#ifndef DFDB_COMMON_RANDOM_H_
#define DFDB_COMMON_RANDOM_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <string>

namespace dfdb {

/// \brief xoshiro256** 1.0 by Blackman & Vigna (public domain algorithm).
class Random {
 public:
  /// Seeds the state with splitmix64 expansion of \p seed.
  explicit Random(uint64_t seed = 42) {
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      // splitmix64 step.
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s_[i] = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform value in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n) {
    assert(n > 0);
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = -n % n;
    for (;;) {
      const uint64_t r = Next();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform value in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInRange(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// True with probability \p p (clamped to [0,1]).
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Random lowercase ASCII string of length \p len.
  std::string NextString(size_t len) {
    std::string s(len, 'a');
    for (size_t i = 0; i < len; ++i) {
      s[i] = static_cast<char>('a' + Uniform(26));
    }
    return s;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

/// \brief Zipfian rank sampler (Gray et al., "Quickly Generating
/// Billion-Record Synthetic Databases", SIGMOD 1994).
///
/// Next() draws ranks in [0, n) where rank r has probability proportional
/// to 1/(r+1)^theta — rank 0 is the hottest item, rank n-1 the coldest.
/// Construction is O(n) (harmonic sum); sampling is O(1). Deterministic
/// given the Random stream it draws from.
class Zipfian {
 public:
  explicit Zipfian(uint64_t n, double theta = 0.99)
      : n_(n), theta_(theta), zetan_(Zeta(n, theta)) {
    assert(n > 0);
    assert(theta > 0 && theta < 1);
    alpha_ = 1.0 / (1.0 - theta_);
    const double zeta2 = Zeta(2 < n ? 2 : n, theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2 / zetan_);
  }

  uint64_t Next(Random* rng) {
    const double u = rng->NextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    const uint64_t rank = static_cast<uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return rank >= n_ ? n_ - 1 : rank;
  }

  uint64_t n() const { return n_; }

 private:
  static double Zeta(uint64_t n, double theta) {
    double sum = 0;
    for (uint64_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }

  uint64_t n_;
  double theta_;
  double zetan_;
  double alpha_;
  double eta_;
};

}  // namespace dfdb

#endif  // DFDB_COMMON_RANDOM_H_

/// \file random.h
/// \brief Deterministic pseudo-random generation (xoshiro256**).
///
/// All workload generation and randomized testing in dfdb uses this PRNG so
/// that every experiment is reproducible from a single seed.

#ifndef DFDB_COMMON_RANDOM_H_
#define DFDB_COMMON_RANDOM_H_

#include <cassert>
#include <cstdint>
#include <string>

namespace dfdb {

/// \brief xoshiro256** 1.0 by Blackman & Vigna (public domain algorithm).
class Random {
 public:
  /// Seeds the state with splitmix64 expansion of \p seed.
  explicit Random(uint64_t seed = 42) {
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      // splitmix64 step.
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s_[i] = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform value in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n) {
    assert(n > 0);
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = -n % n;
    for (;;) {
      const uint64_t r = Next();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform value in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInRange(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// True with probability \p p (clamped to [0,1]).
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Random lowercase ASCII string of length \p len.
  std::string NextString(size_t len) {
    std::string s(len, 'a');
    for (size_t i = 0; i < len; ++i) {
      s[i] = static_cast<char>('a' + Uniform(26));
    }
    return s;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

}  // namespace dfdb

#endif  // DFDB_COMMON_RANDOM_H_

/// \file logging.h
/// \brief Minimal leveled logger and CHECK macros.

#ifndef DFDB_COMMON_LOGGING_H_
#define DFDB_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace dfdb {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kFatal = 4 };

/// \brief Process-wide logging configuration.
class LogConfig {
 public:
  /// Messages below this level are discarded. Default: kWarn (quiet for
  /// benchmarks; tests and examples may lower it).
  static LogLevel& MinLevel() {
    static LogLevel level = LogLevel::kWarn;
    return level;
  }
  static std::mutex& Mutex() {
    static std::mutex mu;
    return mu;
  }
};

namespace internal {

/// RAII message builder; emits on destruction. Fatal messages abort.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level) {
    stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
            << "] ";
  }

  ~LogMessage() {
    if (level_ >= LogConfig::MinLevel()) {
      std::lock_guard<std::mutex> lock(LogConfig::Mutex());
      std::cerr << stream_.str() << std::endl;
    }
    if (level_ == LogLevel::kFatal) std::abort();
  }

  std::ostream& stream() { return stream_; }

 private:
  static const char* LevelName(LogLevel level) {
    switch (level) {
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO";
      case LogLevel::kWarn: return "WARN";
      case LogLevel::kError: return "ERROR";
      case LogLevel::kFatal: return "FATAL";
    }
    return "?";
  }
  static const char* Basename(const char* file) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    return base;
  }

  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace dfdb

#define DFDB_LOG(level)                                                     \
  ::dfdb::internal::LogMessage(::dfdb::LogLevel::k##level, __FILE__, __LINE__) \
      .stream()

/// Aborts with a message when \p cond is false (enabled in all builds).
#define DFDB_CHECK(cond)                                        \
  if (!(cond)) DFDB_LOG(Fatal) << "Check failed: " #cond " "

#define DFDB_CHECK_OK(expr)                                 \
  do {                                                      \
    ::dfdb::Status _dfdb_chk = (expr);                      \
    if (!_dfdb_chk.ok())                                    \
      DFDB_LOG(Fatal) << "Status not OK: " << _dfdb_chk;    \
  } while (false)

#endif  // DFDB_COMMON_LOGGING_H_

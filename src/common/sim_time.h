/// \file sim_time.h
/// \brief Fixed-point simulated time for the machine simulator.
///
/// The discrete-event simulator in src/machine is fully deterministic; all
/// device models express latencies as SimTime values with nanosecond
/// resolution. Using an integer representation (not double) guarantees that
/// event ordering is exact and platform-independent.

#ifndef DFDB_COMMON_SIM_TIME_H_
#define DFDB_COMMON_SIM_TIME_H_

#include <cstdint>
#include <ostream>
#include <string>

namespace dfdb {

/// \brief A point in (or duration of) simulated time, in nanoseconds.
class SimTime {
 public:
  constexpr SimTime() : ns_(0) {}
  constexpr explicit SimTime(int64_t ns) : ns_(ns) {}

  static constexpr SimTime Zero() { return SimTime(0); }
  static constexpr SimTime Nanos(int64_t n) { return SimTime(n); }
  static constexpr SimTime Micros(int64_t n) { return SimTime(n * 1000); }
  static constexpr SimTime Millis(int64_t n) { return SimTime(n * 1000000); }
  static constexpr SimTime Seconds(int64_t n) { return SimTime(n * 1000000000LL); }
  /// Rounds to the nearest nanosecond.
  static SimTime FromSecondsF(double s) {
    return SimTime(static_cast<int64_t>(s * 1e9 + 0.5));
  }

  constexpr int64_t nanos() const { return ns_; }
  constexpr double ToSecondsF() const { return static_cast<double>(ns_) / 1e9; }
  constexpr double ToMillisF() const { return static_cast<double>(ns_) / 1e6; }

  constexpr SimTime operator+(SimTime o) const { return SimTime(ns_ + o.ns_); }
  constexpr SimTime operator-(SimTime o) const { return SimTime(ns_ - o.ns_); }
  constexpr SimTime operator*(int64_t k) const { return SimTime(ns_ * k); }
  SimTime& operator+=(SimTime o) {
    ns_ += o.ns_;
    return *this;
  }
  SimTime& operator-=(SimTime o) {
    ns_ -= o.ns_;
    return *this;
  }

  constexpr auto operator<=>(const SimTime&) const = default;

  /// Human-readable rendering with an adaptive unit (ns/us/ms/s).
  std::string ToString() const;

 private:
  int64_t ns_;
};

std::ostream& operator<<(std::ostream& os, SimTime t);

/// \brief Computes the time to move \p bytes at \p bits_per_second, rounded
/// up to the next nanosecond. Returns Zero for a zero rate (infinite speed).
SimTime TransferTime(int64_t bytes, double bits_per_second);

}  // namespace dfdb

#endif  // DFDB_COMMON_SIM_TIME_H_

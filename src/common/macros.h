/// \file macros.h
/// \brief Error-propagation and utility macros.

#ifndef DFDB_COMMON_MACROS_H_
#define DFDB_COMMON_MACROS_H_

/// Evaluates \p expr (a Status expression); returns it from the enclosing
/// function if not OK.
#define DFDB_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::dfdb::Status _dfdb_status = (expr);           \
    if (!_dfdb_status.ok()) return _dfdb_status;    \
  } while (false)

#define DFDB_CONCAT_IMPL(x, y) x##y
#define DFDB_CONCAT(x, y) DFDB_CONCAT_IMPL(x, y)

/// Evaluates \p expr (a StatusOr expression); on error returns its status,
/// otherwise moves the value into \p lhs (which may include a declaration).
#define DFDB_ASSIGN_OR_RETURN(lhs, expr)                              \
  DFDB_ASSIGN_OR_RETURN_IMPL(DFDB_CONCAT(_dfdb_sor_, __LINE__), lhs, expr)

#define DFDB_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr)  \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return std::move(tmp).status();    \
  lhs = std::move(tmp).value()

/// Deletes copy construction and copy assignment for \p Class.
#define DFDB_DISALLOW_COPY(Class)   \
  Class(const Class&) = delete;     \
  Class& operator=(const Class&) = delete

#endif  // DFDB_COMMON_MACROS_H_

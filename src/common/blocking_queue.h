/// \file blocking_queue.h
/// \brief Thread-safe bounded and unbounded queues for the dataflow engine.

#ifndef DFDB_COMMON_BLOCKING_QUEUE_H_
#define DFDB_COMMON_BLOCKING_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <limits>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "common/macros.h"

namespace dfdb {

/// \brief Multi-producer multi-consumer FIFO with optional capacity bound
/// and a close() signal for end-of-stream.
///
/// Pop() blocks until an element arrives or the queue is closed and drained;
/// a closed-and-drained queue yields std::nullopt. This is the backpressure
/// primitive between pipelined operators in the page-dataflow engine.
template <typename T>
class BlockingQueue {
 public:
  explicit BlockingQueue(size_t capacity = std::numeric_limits<size_t>::max())
      : capacity_(capacity) {}

  DFDB_DISALLOW_COPY(BlockingQueue);

  /// Blocks while full; returns false if the queue was closed first.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Pushes \p items as one atomic batch: no other producer's element can
  /// interleave within the batch, and a consumer blocked in Pop() cannot
  /// wake until the whole batch is in the queue. This is what makes a
  /// single-worker schedule deterministic when a query's initial task set
  /// is enqueued while the worker runs. Blocks while the batch would
  /// exceed capacity; returns false if the queue was closed first.
  bool PushAll(std::vector<T> items) {
    if (items.empty()) return true;
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] {
      return closed_ || items_.size() + items.size() <= capacity_;
    });
    if (closed_) return false;
    for (T& item : items) items_.push_back(std::move(item));
    not_empty_.notify_all();
    return true;
  }

  /// Non-blocking push; returns false when full or closed.
  bool TryPush(T item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and empty.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Marks end-of-stream: pending and future Pop() calls drain the queue and
  /// then return nullopt; Push() calls fail.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  size_t capacity_;
  bool closed_ = false;
};

}  // namespace dfdb

#endif  // DFDB_COMMON_BLOCKING_QUEUE_H_

/// \file generator.h
/// \brief Synthetic relation generation.
///
/// The paper's test database ("15 relations with a combined size of 5.5
/// megabytes") is not published, so we generate a deterministic synthetic
/// equivalent with 100-byte tuples — the tuple size Section 3.3's bandwidth
/// analysis assumes — and attribute value distributions that give precise
/// control over restrict selectivities and join fan-outs.

#ifndef DFDB_WORKLOAD_GENERATOR_H_
#define DFDB_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <string>

#include "catalog/schema.h"
#include "common/status.h"
#include "common/statusor.h"
#include "storage/storage_engine.h"

namespace dfdb {

/// \brief The standard 100-byte benchmark tuple layout.
///
/// Columns:
///   id    INT32   unique, dense 0..n-1 in random order;
///   seq   INT32   sequential 0..n-1 (insertion order);
///   k2    INT32   uniform in [0,2);
///   k5    INT32   uniform in [0,5);
///   k10   INT32   uniform in [0,10);
///   k25   INT32   uniform in [0,25);
///   k100  INT32   uniform in [0,100);
///   k1000 INT32   uniform in [0,1000)  — "k1000 < s" selects s/1000;
///   val   DOUBLE  uniform in [0,1);
///   pad   CHAR(60) filler bringing the tuple to exactly 100 bytes.
Schema BenchmarkSchema();

/// \brief Creates relation \p name with \p num_tuples benchmark tuples.
///
/// Deterministic in (\p name, \p num_tuples, \p seed). Returns the new
/// relation id; flushes and syncs catalog statistics.
StatusOr<RelationId> GenerateRelation(StorageEngine* storage,
                                      const std::string& name,
                                      uint64_t num_tuples, uint64_t seed);

/// \brief Like GenerateRelation, but keeps only one hash partition of the
/// tuples: a tuple survives iff Hash64 of its raw `id` bytes maps to
/// \p partition modulo \p partitions (the same key-byte hash exchange
/// routing uses — operators/exchange.h — so distributed co-partitioned
/// joins line up with load-time partitioning).
///
/// The generator stream is identical to the full build; non-matching rows
/// are generated and discarded, so the kept tuples are byte-identical to
/// the corresponding tuples of every other partition count.
StatusOr<RelationId> GenerateRelationPartition(StorageEngine* storage,
                                               const std::string& name,
                                               uint64_t num_tuples,
                                               uint64_t seed, int partition,
                                               int partitions);

/// \brief 100-byte event tuple for skewed/selective access-path workloads.
///
/// Columns:
///   ts      INT64   monotone event clock 0..n-1 (insertion order) — time
///                   windows are contiguous page runs, so zone maps prune
///                   them near-perfectly;
///   user    INT32   Zipfian-skewed user id (rank = id: low ids hot, high
///                   ids rare), constant within a session;
///   device  INT32   device id in [0,16), constant within a session;
///   val     DOUBLE  uniform in [0,1);
///   pad     CHAR(76) filler bringing the tuple to exactly 100 bytes.
Schema SkewedEventSchema();

/// Users in a skewed relation of \p num_tuples events (so callers can pick
/// valid hot/rare user ids: 0 is hottest, count-1 rarest).
uint64_t SkewedEventUserCount(uint64_t num_tuples);

/// \brief Creates relation \p name with \p num_tuples sessionized skewed
/// events.
///
/// Events arrive in sessions: each session draws a Zipfian user and a
/// uniform device, then emits a run of consecutive events (~160, one
/// heap page's worth), so a user's tuples cluster into few pages and
/// per-page secondary indexes stay selective. Deterministic in
/// (\p name, \p num_tuples, \p seed); flushes and syncs catalog stats.
StatusOr<RelationId> GenerateSkewedRelation(StorageEngine* storage,
                                            const std::string& name,
                                            uint64_t num_tuples,
                                            uint64_t seed);

}  // namespace dfdb

#endif  // DFDB_WORKLOAD_GENERATOR_H_

/// \file csv.h
/// \brief CSV import/export for relations.
///
/// Import infers or accepts a schema and bulk-loads a heap file; export
/// writes any relation (or query result) back out. Strings are quoted with
/// double quotes; embedded quotes double up (RFC 4180 style).

#ifndef DFDB_WORKLOAD_CSV_H_
#define DFDB_WORKLOAD_CSV_H_

#include <iosfwd>
#include <string>

#include "common/statusor.h"
#include "engine/query_result.h"
#include "storage/storage_engine.h"

namespace dfdb {

/// \brief Options controlling CSV import.
struct CsvOptions {
  char delimiter = ',';
  /// First row holds column names.
  bool header = true;
  /// Width used for inferred CHAR columns.
  int char_width = 32;
};

/// \brief Creates relation \p name from CSV text with the given \p schema
/// and loads every row. Returns the number of rows loaded.
///
/// Values are parsed per column type; a row with the wrong field count or
/// an unparsable value fails the whole import (atomic: the relation is
/// dropped on error).
StatusOr<uint64_t> ImportCsv(StorageEngine* storage, const std::string& name,
                             const Schema& schema, std::istream& in,
                             const CsvOptions& options = CsvOptions());

/// \brief Like ImportCsv but infers the schema from the header and the
/// first data row: integral fields become INT64, numeric fields DOUBLE,
/// everything else CHAR(options.char_width).
StatusOr<uint64_t> ImportCsvInferred(StorageEngine* storage,
                                     const std::string& name, std::istream& in,
                                     const CsvOptions& options = CsvOptions());

/// \brief Writes a relation as CSV (with header). Returns rows written.
StatusOr<uint64_t> ExportCsv(StorageEngine* storage, const std::string& name,
                             std::ostream& out,
                             const CsvOptions& options = CsvOptions());

/// \brief Writes a query result as CSV (with header). Returns rows written.
StatusOr<uint64_t> ExportResultCsv(const QueryResult& result, std::ostream& out,
                                   const CsvOptions& options = CsvOptions());

}  // namespace dfdb

#endif  // DFDB_WORKLOAD_CSV_H_

#include "workload/paper_benchmark.h"

#include <cmath>

#include "common/macros.h"
#include "common/string_util.h"
#include "workload/generator.h"

namespace dfdb {

namespace {

/// Shorthand: scan \p rel restricted to k1000 < \p upper (selectivity
/// upper/1000).
PlanNodePtr ScanSel(const std::string& rel, int upper) {
  return MakeRestrict(MakeScan(rel), Lt(Col("k1000"), Lit(upper)));
}

/// Equi-join on \p key between the running left tree and a new right input.
PlanNodePtr JoinOn(PlanNodePtr left, PlanNodePtr right, const char* key) {
  return MakeJoin(std::move(left), std::move(right),
                  Eq(Col(key), RightCol(key)));
}

Query MakeQuery(uint64_t id, std::string name, PlanNodePtr root) {
  Query q;
  q.id = id;
  q.name = std::move(name);
  q.root = std::move(root);
  return q;
}

}  // namespace

std::vector<PaperRelationSpec> PaperDatabaseLayout(double scale) {
  auto scaled = [scale](uint64_t base) -> uint64_t {
    const auto n = static_cast<uint64_t>(std::llround(base * scale));
    return n < 20 ? 20 : n;
  };
  std::vector<PaperRelationSpec> specs;
  // StrFormat (not `"r0" + std::to_string(i)`): the rvalue operator+
  // chain trips a gcc-12 -Werror=restrict false positive at -O2.
  // 4 large relations: 8,000 x 100 B = 800 KB each.
  for (int i = 1; i <= 4; ++i) {
    specs.push_back({StrFormat("r%02d", i), scaled(8000)});
  }
  // 5 medium relations: 3,000 x 100 B = 300 KB each.
  for (int i = 5; i <= 9; ++i) {
    specs.push_back({StrFormat("r%02d", i), scaled(3000)});
  }
  // 6 small relations: 1,300 x 100 B = 130 KB each.
  for (int i = 10; i <= 15; ++i) {
    specs.push_back({StrFormat("r%02d", i), scaled(1300)});
  }
  return specs;
}

StatusOr<int64_t> BuildPaperDatabase(StorageEngine* storage, double scale,
                                     uint64_t seed) {
  for (const PaperRelationSpec& spec : PaperDatabaseLayout(scale)) {
    DFDB_ASSIGN_OR_RETURN(RelationId id, GenerateRelation(storage, spec.name,
                                                          spec.tuples, seed));
    (void)id;
  }
  return storage->catalog().TotalBytes();
}

StatusOr<int64_t> BuildPartitionedPaperDatabase(StorageEngine* storage,
                                                int partition, int partitions,
                                                double scale, uint64_t seed) {
  for (const PaperRelationSpec& spec : PaperDatabaseLayout(scale)) {
    DFDB_ASSIGN_OR_RETURN(
        RelationId id,
        GenerateRelationPartition(storage, spec.name, spec.tuples, seed,
                                  partition, partitions));
    (void)id;
  }
  return storage->catalog().TotalBytes();
}

Status BuildPaperCatalog(Catalog* catalog, double scale) {
  const Schema schema = BenchmarkSchema();
  const uint64_t page_bytes = 16384;
  for (const PaperRelationSpec& spec : PaperDatabaseLayout(scale)) {
    DFDB_ASSIGN_OR_RETURN(RelationId id,
                          catalog->CreateRelation(spec.name, schema));
    const uint64_t pages =
        (spec.tuples * static_cast<uint64_t>(schema.tuple_width()) +
         page_bytes - 1) /
        page_bytes;
    DFDB_RETURN_IF_ERROR(catalog->UpdateStats(id, spec.tuples, pages));
  }
  return Status::OK();
}

std::vector<Query> MakePaperBenchmarkQueries() {
  std::vector<Query> queries;

  // Q1, Q2: single restrict.
  queries.push_back(MakeQuery(1, "Q1", ScanSel("r01", 100)));
  queries.push_back(MakeQuery(2, "Q2", ScanSel("r05", 300)));

  // Q3..Q5: 1 join + 2 restricts.
  queries.push_back(MakeQuery(
      3, "Q3", JoinOn(ScanSel("r02", 100), ScanSel("r06", 100), "k100")));
  queries.push_back(MakeQuery(
      4, "Q4", JoinOn(ScanSel("r03", 50), ScanSel("r07", 100), "k100")));
  queries.push_back(MakeQuery(
      5, "Q5", JoinOn(ScanSel("r10", 200), ScanSel("r11", 200), "k100")));

  // Q6, Q7: 2 joins + 3 restricts. The first join fans out on the k100
  // group key between restricted inputs; later joins hit small relations
  // on k1000 (density ~1.3/value), keeping intermediate cardinality within
  // one order of magnitude of the inputs.
  queries.push_back(MakeQuery(
      6, "Q6",
      JoinOn(JoinOn(ScanSel("r01", 50), ScanSel("r08", 100), "k100"),
             ScanSel("r12", 200), "k1000")));
  queries.push_back(MakeQuery(
      7, "Q7",
      JoinOn(JoinOn(ScanSel("r04", 50), ScanSel("r09", 100), "k100"),
             ScanSel("r13", 300), "k1000")));

  // Q8: 3 joins + 4 restricts.
  queries.push_back(MakeQuery(
      8, "Q8",
      JoinOn(JoinOn(JoinOn(ScanSel("r02", 30), ScanSel("r05", 100), "k100"),
                    ScanSel("r10", 200), "k1000"),
             ScanSel("r14", 300), "k1000")));

  // Q9: 4 joins + 4 restricts (the fifth input scans unrestricted).
  queries.push_back(MakeQuery(
      9, "Q9",
      JoinOn(JoinOn(JoinOn(JoinOn(ScanSel("r03", 30), ScanSel("r06", 100),
                                  "k100"),
                           ScanSel("r11", 200), "k1000"),
                    ScanSel("r12", 300), "k1000"),
             MakeScan("r15"), "k1000")));

  // Q10: 5 joins + 6 restricts.
  queries.push_back(MakeQuery(
      10, "Q10",
      JoinOn(JoinOn(JoinOn(JoinOn(JoinOn(ScanSel("r01", 50),
                                         ScanSel("r04", 50), "k100"),
                                  ScanSel("r10", 400), "k1000"),
                           ScanSel("r11", 400), "k1000"),
                    ScanSel("r13", 400), "k1000"),
             ScanSel("r15", 500), "k1000")));

  return queries;
}

std::vector<QueryShape> PaperBenchmarkShapes() {
  return {
      {0, 1}, {0, 1},          // Q1, Q2
      {1, 2}, {1, 2}, {1, 2},  // Q3..Q5
      {2, 3}, {2, 3},          // Q6, Q7
      {3, 4},                  // Q8
      {4, 4},                  // Q9
      {5, 6},                  // Q10
  };
}

}  // namespace dfdb

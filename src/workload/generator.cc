#include "workload/generator.h"

#include <numeric>
#include <vector>

#include "common/hash.h"
#include "common/macros.h"
#include "common/random.h"
#include "storage/tuple.h"

namespace dfdb {

Schema BenchmarkSchema() {
  return Schema::CreateOrDie({
      Column::Int32("id"),
      Column::Int32("seq"),
      Column::Int32("k2"),
      Column::Int32("k5"),
      Column::Int32("k10"),
      Column::Int32("k25"),
      Column::Int32("k100"),
      Column::Int32("k1000"),
      Column::Double("val"),
      Column::Char("pad", 60),
  });
}

StatusOr<RelationId> GenerateRelation(StorageEngine* storage,
                                      const std::string& name,
                                      uint64_t num_tuples, uint64_t seed) {
  return GenerateRelationPartition(storage, name, num_tuples, seed,
                                   /*partition=*/0, /*partitions=*/1);
}

StatusOr<RelationId> GenerateRelationPartition(StorageEngine* storage,
                                               const std::string& name,
                                               uint64_t num_tuples,
                                               uint64_t seed, int partition,
                                               int partitions) {
  if (partitions < 1 || partition < 0 || partition >= partitions) {
    return Status::InvalidArgument("bad partition spec");
  }
  Schema schema = BenchmarkSchema();
  DFDB_ASSIGN_OR_RETURN(RelationId id, storage->CreateRelation(name, schema));
  DFDB_ASSIGN_OR_RETURN(HeapFile * file, storage->GetHeapFile(id));

  // Dense unique ids in a deterministic shuffle.
  Random rng(HashCombine(seed, Hash64(name.data(), name.size())));
  std::vector<int32_t> ids(num_tuples);
  std::iota(ids.begin(), ids.end(), 0);
  for (size_t i = num_tuples; i > 1; --i) {
    std::swap(ids[i - 1], ids[rng.Uniform(i)]);
  }

  const std::string pad(60, 'x');
  for (uint64_t i = 0; i < num_tuples; ++i) {
    std::vector<Value> row{
        Value::Int32(ids[i]),
        Value::Int32(static_cast<int32_t>(i)),
        Value::Int32(static_cast<int32_t>(rng.Uniform(2))),
        Value::Int32(static_cast<int32_t>(rng.Uniform(5))),
        Value::Int32(static_cast<int32_t>(rng.Uniform(10))),
        Value::Int32(static_cast<int32_t>(rng.Uniform(25))),
        Value::Int32(static_cast<int32_t>(rng.Uniform(100))),
        Value::Int32(static_cast<int32_t>(rng.Uniform(1000))),
        Value::Double(rng.NextDouble()),
        Value::Char(pad),
    };
    if (partitions > 1) {
      // Same raw-key-byte hash as exchange routing (operators/exchange.h),
      // so load-time placement agrees with shuffle placement.
      const int32_t tuple_id = ids[i];
      if (Hash64(&tuple_id, sizeof(tuple_id)) %
              static_cast<uint64_t>(partitions) !=
          static_cast<uint64_t>(partition)) {
        continue;
      }
    }
    DFDB_RETURN_IF_ERROR(file->Append(row));
  }
  DFDB_RETURN_IF_ERROR(storage->SyncStats(id));
  return id;
}

Schema SkewedEventSchema() {
  return Schema::CreateOrDie({
      Column::Int64("ts"),
      Column::Int32("user"),
      Column::Int32("device"),
      Column::Double("val"),
      Column::Char("pad", 76),
  });
}

uint64_t SkewedEventUserCount(uint64_t num_tuples) {
  const uint64_t users = num_tuples / 512;
  return users < 64 ? 64 : users;
}

StatusOr<RelationId> GenerateSkewedRelation(StorageEngine* storage,
                                            const std::string& name,
                                            uint64_t num_tuples,
                                            uint64_t seed) {
  Schema schema = SkewedEventSchema();
  DFDB_ASSIGN_OR_RETURN(RelationId id, storage->CreateRelation(name, schema));
  DFDB_ASSIGN_OR_RETURN(HeapFile * file, storage->GetHeapFile(id));

  Random rng(HashCombine(seed, Hash64(name.data(), name.size())));
  Zipfian users(SkewedEventUserCount(num_tuples), /*theta=*/0.99);

  const std::string pad(76, 'e');
  // Mean session length ~160 events: one 16 KB page of 100-byte tuples, so
  // a session's tuples land on 1-2 pages.
  constexpr int64_t kMeanSessionLength = 160;
  uint64_t emitted = 0;
  while (emitted < num_tuples) {
    const int32_t user = static_cast<int32_t>(users.Next(&rng));
    const int32_t device = static_cast<int32_t>(rng.Uniform(16));
    const int64_t len = rng.UniformInRange(kMeanSessionLength / 2,
                                           kMeanSessionLength * 3 / 2);
    for (int64_t e = 0; e < len && emitted < num_tuples; ++e, ++emitted) {
      std::vector<Value> row{
          Value::Int64(static_cast<int64_t>(emitted)),
          Value::Int32(user),
          Value::Int32(device),
          Value::Double(rng.NextDouble()),
          Value::Char(pad),
      };
      DFDB_RETURN_IF_ERROR(file->Append(row));
    }
  }
  DFDB_RETURN_IF_ERROR(storage->SyncStats(id));
  return id;
}

}  // namespace dfdb

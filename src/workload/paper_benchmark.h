/// \file paper_benchmark.h
/// \brief The paper's evaluation workload (Section 3.2).
///
/// "Using a benchmark containing ten queries (2 queries with 1 restrict
/// operator only, 3 queries with 1 join and 2 restricts each, 2 queries
/// with 2 joins and 3 restricts each, 1 query with 3 joins and 4 restricts,
/// 1 query with 4 joins and 4 restricts, and 1 query with 5 joins and 6
/// restricts), a relational database containing 15 relations with a
/// combined size of 5.5 megabytes, and two memory cells for each
/// processor ..."

#ifndef DFDB_WORKLOAD_PAPER_BENCHMARK_H_
#define DFDB_WORKLOAD_PAPER_BENCHMARK_H_

#include <string>
#include <vector>

#include "common/statusor.h"
#include "ra/plan.h"
#include "storage/storage_engine.h"

namespace dfdb {

/// \brief Size class of a generated relation.
struct PaperRelationSpec {
  std::string name;
  uint64_t tuples;
};

/// \brief The 15-relation layout: 4 large + 5 medium + 6 small relations of
/// 100-byte tuples. At scale 1.0 the total is ~5.5 MB as in the paper.
std::vector<PaperRelationSpec> PaperDatabaseLayout(double scale = 1.0);

/// \brief Generates the 15 relations into \p storage. Deterministic in
/// \p seed. Returns the total size in bytes.
StatusOr<int64_t> BuildPaperDatabase(StorageEngine* storage, double scale = 1.0,
                                     uint64_t seed = 42);

/// \brief Column by which base relations are hash-partitioned across
/// workers in distributed mode: the dense unique `id`. Every party
/// (worker load, exchange routing, fragment planning) shares this
/// convention.
inline constexpr std::string_view kPartitionColumn = "id";

/// \brief Generates worker \p partition's slice of the paper database:
/// each relation holds exactly the tuples whose kPartitionColumn hash maps
/// to this partition (see GenerateRelationPartition). The union of all
/// partitions is byte-identical to the BuildPaperDatabase output for the
/// same (scale, seed). Returns this worker's total bytes.
StatusOr<int64_t> BuildPartitionedPaperDatabase(StorageEngine* storage,
                                                int partition, int partitions,
                                                double scale = 1.0,
                                                uint64_t seed = 42);

/// \brief Registers the layout's relations (benchmark schema + exact
/// full-database row counts) into a standalone catalog — the schema-only
/// view a distributed coordinator plans against without holding any data.
Status BuildPaperCatalog(Catalog* catalog, double scale = 1.0);

/// \brief Builds the ten-query benchmark over the paper database.
///
/// Query shapes match the published mix exactly:
///   Q1,Q2     : 1 restrict
///   Q3,Q4,Q5  : 1 join + 2 restricts
///   Q6,Q7     : 2 joins + 3 restricts
///   Q8        : 3 joins + 4 restricts
///   Q9        : 4 joins + 4 restricts
///   Q10       : 5 joins + 6 restricts
/// Restrict selectivities and join keys are chosen so that intermediate
/// results stay within the same order of magnitude as their inputs.
std::vector<Query> MakePaperBenchmarkQueries();

/// \brief Per-query shape counts for validation and reporting.
struct QueryShape {
  int joins = 0;
  int restricts = 0;
};
std::vector<QueryShape> PaperBenchmarkShapes();

}  // namespace dfdb

#endif  // DFDB_WORKLOAD_PAPER_BENCHMARK_H_

#include "workload/csv.h"

#include <cstdlib>
#include <istream>
#include <ostream>
#include <vector>

#include "common/macros.h"
#include "common/string_util.h"

namespace dfdb {

namespace {

/// Splits one CSV line honoring quotes. Returns false on malformed quoting.
bool SplitCsvLine(const std::string& line, char delim,
                  std::vector<std::string>* fields) {
  fields->clear();
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == delim) {
      fields->push_back(std::move(cur));
      cur.clear();
    } else if (c == '\r') {
      // Tolerate CRLF.
    } else {
      cur += c;
    }
  }
  if (in_quotes) return false;
  fields->push_back(std::move(cur));
  return true;
}

void WriteCsvField(std::ostream& out, const std::string& s, char delim) {
  const bool needs_quotes = s.find(delim) != std::string::npos ||
                            s.find('"') != std::string::npos ||
                            s.find('\n') != std::string::npos;
  if (!needs_quotes) {
    out << s;
    return;
  }
  out << '"';
  for (char c : s) {
    if (c == '"') out << '"';
    out << c;
  }
  out << '"';
}

StatusOr<Value> ParseField(const std::string& field, const Column& col) {
  switch (col.type) {
    case ColumnType::kInt32: {
      char* end = nullptr;
      const long v = std::strtol(field.c_str(), &end, 10);
      if (end == field.c_str() || *end != '\0') {
        return Status::InvalidArgument("not an integer: '" + field + "'");
      }
      return Value::Int32(static_cast<int32_t>(v));
    }
    case ColumnType::kInt64: {
      char* end = nullptr;
      const long long v = std::strtoll(field.c_str(), &end, 10);
      if (end == field.c_str() || *end != '\0') {
        return Status::InvalidArgument("not an integer: '" + field + "'");
      }
      return Value::Int64(v);
    }
    case ColumnType::kDouble: {
      char* end = nullptr;
      const double v = std::strtod(field.c_str(), &end);
      if (end == field.c_str() || *end != '\0') {
        return Status::InvalidArgument("not a number: '" + field + "'");
      }
      return Value::Double(v);
    }
    case ColumnType::kChar: {
      if (static_cast<int>(field.size()) > col.width) {
        return Status::InvalidArgument(
            StrFormat("string of %zu bytes exceeds CHAR(%d)", field.size(),
                      col.width));
      }
      return Value::Char(field);
    }
  }
  return Status::Internal("unreachable");
}

bool LooksLikeInt(const std::string& s) {
  if (s.empty()) return false;
  size_t i = s[0] == '-' ? 1 : 0;
  if (i >= s.size()) return false;
  for (; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

bool LooksLikeDouble(const std::string& s) {
  char* end = nullptr;
  if (s.empty()) return false;
  std::strtod(s.c_str(), &end);
  return end != s.c_str() && *end == '\0';
}

Status LoadRows(StorageEngine* storage, RelationId id, const Schema& schema,
                std::istream& in, const CsvOptions& options, bool skip_header,
                uint64_t* rows) {
  DFDB_ASSIGN_OR_RETURN(HeapFile * file, storage->GetHeapFile(id));
  std::string line;
  std::vector<std::string> fields;
  uint64_t line_no = 0;
  *rows = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line_no == 1 && skip_header) continue;
    if (line.empty()) continue;
    if (!SplitCsvLine(line, options.delimiter, &fields)) {
      return Status::InvalidArgument(
          StrFormat("line %llu: unbalanced quotes",
                    static_cast<unsigned long long>(line_no)));
    }
    if (static_cast<int>(fields.size()) != schema.num_columns()) {
      return Status::InvalidArgument(
          StrFormat("line %llu: expected %d fields, got %zu",
                    static_cast<unsigned long long>(line_no),
                    schema.num_columns(), fields.size()));
    }
    std::vector<Value> row;
    row.reserve(fields.size());
    for (int c = 0; c < schema.num_columns(); ++c) {
      auto v = ParseField(fields[static_cast<size_t>(c)], schema.column(c));
      if (!v.ok()) {
        return v.status().WithContext(
            StrFormat("line %llu column %s",
                      static_cast<unsigned long long>(line_no),
                      schema.column(c).name.c_str()));
      }
      row.push_back(*std::move(v));
    }
    DFDB_RETURN_IF_ERROR(file->Append(row));
    ++*rows;
  }
  return storage->SyncStats(id);
}

}  // namespace

StatusOr<uint64_t> ImportCsv(StorageEngine* storage, const std::string& name,
                             const Schema& schema, std::istream& in,
                             const CsvOptions& options) {
  DFDB_ASSIGN_OR_RETURN(RelationId id, storage->CreateRelation(name, schema));
  uint64_t rows = 0;
  Status s = LoadRows(storage, id, schema, in, options, options.header, &rows);
  if (!s.ok()) {
    (void)storage->DropRelation(name);  // Atomic import.
    return s;
  }
  return rows;
}

StatusOr<uint64_t> ImportCsvInferred(StorageEngine* storage,
                                     const std::string& name, std::istream& in,
                                     const CsvOptions& options) {
  if (!options.header) {
    return Status::InvalidArgument("schema inference requires a header row");
  }
  std::string header_line, first_row;
  if (!std::getline(in, header_line)) {
    return Status::InvalidArgument("empty CSV input");
  }
  if (!std::getline(in, first_row)) {
    return Status::InvalidArgument("CSV has a header but no data rows");
  }
  std::vector<std::string> names, samples;
  if (!SplitCsvLine(header_line, options.delimiter, &names) ||
      !SplitCsvLine(first_row, options.delimiter, &samples)) {
    return Status::InvalidArgument("unbalanced quotes in header/first row");
  }
  if (names.size() != samples.size()) {
    return Status::InvalidArgument("header/data field count mismatch");
  }
  std::vector<Column> cols;
  for (size_t i = 0; i < names.size(); ++i) {
    if (LooksLikeInt(samples[i])) {
      cols.push_back(Column::Int64(names[i]));
    } else if (LooksLikeDouble(samples[i])) {
      cols.push_back(Column::Double(names[i]));
    } else {
      cols.push_back(Column::Char(names[i], options.char_width));
    }
  }
  DFDB_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(cols)));
  DFDB_ASSIGN_OR_RETURN(RelationId id, storage->CreateRelation(name, schema));

  // Load the sampled first row, then the rest of the stream.
  uint64_t rows = 0;
  {
    DFDB_ASSIGN_OR_RETURN(HeapFile * file, storage->GetHeapFile(id));
    std::vector<Value> row;
    for (int c = 0; c < schema.num_columns(); ++c) {
      auto v = ParseField(samples[static_cast<size_t>(c)], schema.column(c));
      if (!v.ok()) {
        (void)storage->DropRelation(name);
        return v.status();
      }
      row.push_back(*std::move(v));
    }
    Status s = file->Append(row);
    if (!s.ok()) {
      (void)storage->DropRelation(name);
      return s;
    }
    rows = 1;
  }
  uint64_t more = 0;
  Status s = LoadRows(storage, id, schema, in, options, /*skip_header=*/false,
                      &more);
  if (!s.ok()) {
    (void)storage->DropRelation(name);
    return s;
  }
  return rows + more;
}

StatusOr<uint64_t> ExportResultCsv(const QueryResult& result, std::ostream& out,
                                   const CsvOptions& options) {
  const Schema& schema = result.schema();
  if (options.header) {
    for (int c = 0; c < schema.num_columns(); ++c) {
      if (c > 0) out << options.delimiter;
      WriteCsvField(out, schema.column(c).name, options.delimiter);
    }
    out << '\n';
  }
  uint64_t rows = 0;
  Status s = result.ForEachTuple([&](const TupleView& t) -> Status {
    for (int c = 0; c < schema.num_columns(); ++c) {
      if (c > 0) out << options.delimiter;
      DFDB_ASSIGN_OR_RETURN(Value v, t.GetValue(c));
      WriteCsvField(out, v.ToString(), options.delimiter);
    }
    out << '\n';
    ++rows;
    return Status::OK();
  });
  if (!s.ok()) return s;
  return rows;
}

StatusOr<uint64_t> ExportCsv(StorageEngine* storage, const std::string& name,
                             std::ostream& out, const CsvOptions& options) {
  DFDB_ASSIGN_OR_RETURN(RelationMeta meta, storage->catalog().GetRelation(name));
  DFDB_ASSIGN_OR_RETURN(HeapFile * file, storage->GetHeapFile(meta.id));
  DFDB_RETURN_IF_ERROR(file->Flush());
  QueryResult as_result(meta.schema);
  for (PageId id : file->PageIds()) {
    DFDB_ASSIGN_OR_RETURN(PagePtr page, storage->page_store().Get(id));
    as_result.AddPage(std::move(page));
  }
  return ExportResultCsv(as_result, out, options);
}

}  // namespace dfdb

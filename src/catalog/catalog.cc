#include "catalog/catalog.h"

#include "common/string_util.h"

namespace dfdb {

StatusOr<RelationId> Catalog::CreateRelation(std::string name, Schema schema) {
  if (name.empty()) return Status::InvalidArgument("relation name is empty");
  std::lock_guard<std::mutex> lock(mu_);
  if (by_name_.count(name) > 0) {
    return Status::AlreadyExists("relation already exists: " + name);
  }
  RelationMeta meta;
  meta.id = next_id_++;
  meta.name = name;
  meta.schema = std::move(schema);
  id_to_name_[meta.id] = name;
  const RelationId id = meta.id;
  by_name_.emplace(std::move(name), std::move(meta));
  return id;
}

Status Catalog::DropRelation(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no relation named " + std::string(name));
  }
  id_to_name_.erase(it->second.id);
  by_name_.erase(it);
  // Index definitions die with their relation.
  for (auto ix = indexes_.begin(); ix != indexes_.end();) {
    if (ix->second.relation == name) {
      ix = indexes_.erase(ix);
    } else {
      ++ix;
    }
  }
  return Status::OK();
}

StatusOr<RelationMeta> Catalog::GetRelation(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no relation named " + std::string(name));
  }
  return it->second;
}

StatusOr<RelationMeta> Catalog::GetRelation(RelationId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = id_to_name_.find(id);
  if (it == id_to_name_.end()) {
    return Status::NotFound(StrFormat("no relation with id %u", id));
  }
  return by_name_.find(it->second)->second;
}

bool Catalog::Exists(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return by_name_.count(name) > 0;
}

Status Catalog::UpdateStats(RelationId id, uint64_t tuple_count,
                            uint64_t page_count) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = id_to_name_.find(id);
  if (it == id_to_name_.end()) {
    return Status::NotFound(StrFormat("no relation with id %u", id));
  }
  RelationMeta& meta = by_name_.find(it->second)->second;
  meta.tuple_count = tuple_count;
  meta.page_count = page_count;
  return Status::OK();
}

std::vector<std::string> Catalog::ListRelations() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(by_name_.size());
  for (const auto& [name, meta] : by_name_) names.push_back(name);
  return names;
}

int64_t Catalog::TotalBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& [name, meta] : by_name_) total += meta.size_bytes();
  return total;
}

Status Catalog::CreateIndex(IndexMeta meta) {
  if (meta.name.empty()) return Status::InvalidArgument("index name is empty");
  if (meta.columns.empty() || meta.columns.size() > 2) {
    return Status::InvalidArgument(
        "an index needs 1 or 2 key columns, got " +
        std::to_string(meta.columns.size()));
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (indexes_.count(meta.name) > 0) {
    return Status::AlreadyExists("index already exists: " + meta.name);
  }
  auto rel = by_name_.find(meta.relation);
  if (rel == by_name_.end()) {
    return Status::NotFound("no relation named " + meta.relation);
  }
  const Schema& schema = rel->second.schema;
  for (size_t i = 0; i < meta.columns.size(); ++i) {
    auto col = schema.ColumnIndex(meta.columns[i]);
    if (!col.ok()) return col.status();
    if (schema.column(*col).type == ColumnType::kChar) {
      return Status::InvalidArgument("index key column must be numeric: " +
                                     meta.columns[i]);
    }
    for (size_t j = 0; j < i; ++j) {
      if (meta.columns[j] == meta.columns[i]) {
        return Status::InvalidArgument("duplicate index key column: " +
                                       meta.columns[i]);
      }
    }
  }
  std::string name = meta.name;
  indexes_.emplace(std::move(name), std::move(meta));
  return Status::OK();
}

Status Catalog::DropIndex(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = indexes_.find(name);
  if (it == indexes_.end()) {
    return Status::NotFound("no index named " + std::string(name));
  }
  indexes_.erase(it);
  return Status::OK();
}

StatusOr<IndexMeta> Catalog::GetIndex(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = indexes_.find(name);
  if (it == indexes_.end()) {
    return Status::NotFound("no index named " + std::string(name));
  }
  return it->second;
}

std::vector<IndexMeta> Catalog::GetIndexesFor(std::string_view relation) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<IndexMeta> out;
  for (const auto& [name, meta] : indexes_) {
    if (meta.relation == relation) out.push_back(meta);
  }
  return out;
}

std::vector<IndexMeta> Catalog::ListIndexes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<IndexMeta> out;
  out.reserve(indexes_.size());
  for (const auto& [name, meta] : indexes_) out.push_back(meta);
  return out;
}

}  // namespace dfdb

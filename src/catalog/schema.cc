#include "catalog/schema.h"

#include <unordered_set>

#include "common/logging.h"
#include "common/string_util.h"

namespace dfdb {

StatusOr<Schema> Schema::Create(std::vector<Column> columns) {
  std::unordered_set<std::string> names;
  for (const Column& c : columns) {
    if (c.name.empty()) {
      return Status::InvalidArgument("column name must be non-empty");
    }
    if (!names.insert(c.name).second) {
      return Status::InvalidArgument("duplicate column name: " + c.name);
    }
    if (c.type == ColumnType::kChar) {
      if (c.width <= 0) {
        return Status::InvalidArgument(
            StrFormat("CHAR column %s must have positive width", c.name.c_str()));
      }
    } else if (c.width != FixedTypeWidth(c.type)) {
      return Status::InvalidArgument(
          StrFormat("column %s: width %d does not match type %s", c.name.c_str(),
                    c.width, std::string(ColumnTypeToString(c.type)).c_str()));
    }
  }
  if (columns.empty()) {
    return Status::InvalidArgument("schema must have at least one column");
  }
  return Schema(std::move(columns));
}

Schema Schema::CreateOrDie(std::vector<Column> columns) {
  auto schema = Create(std::move(columns));
  DFDB_CHECK(schema.ok()) << schema.status();
  return *std::move(schema);
}

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {
  offsets_.reserve(columns_.size());
  int off = 0;
  for (const Column& c : columns_) {
    offsets_.push_back(off);
    off += c.width;
  }
  tuple_width_ = off;
}

StatusOr<int> Schema::ColumnIndex(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return Status::NotFound(StrFormat("no column named %.*s",
                                    static_cast<int>(name.size()), name.data()));
}

StatusOr<Schema> Schema::Project(const std::vector<int>& indices) const {
  std::vector<Column> cols;
  cols.reserve(indices.size());
  std::unordered_set<std::string> seen;
  for (int i : indices) {
    if (i < 0 || i >= num_columns()) {
      return Status::OutOfRange(StrFormat("column index %d out of range", i));
    }
    Column c = columns_[static_cast<size_t>(i)];
    // Disambiguate duplicates so the result is a valid schema.
    while (!seen.insert(c.name).second) c.name += "_dup";
    cols.push_back(std::move(c));
  }
  return Schema::Create(std::move(cols));
}

Schema Schema::Concat(const Schema& other, std::string_view suffix) const {
  std::vector<Column> cols = columns_;
  std::unordered_set<std::string> names;
  for (const Column& c : cols) names.insert(c.name);
  for (const Column& c : other.columns_) {
    Column copy = c;
    while (!names.insert(copy.name).second) copy.name += suffix;
    cols.push_back(std::move(copy));
  }
  return Schema::CreateOrDie(std::move(cols));
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(columns_.size());
  for (const Column& c : columns_) {
    parts.push_back(StrFormat("%s:%s(%d)", c.name.c_str(),
                              std::string(ColumnTypeToString(c.type)).c_str(),
                              c.width));
  }
  return JoinStrings(parts, ", ");
}

}  // namespace dfdb

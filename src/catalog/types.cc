#include "catalog/types.h"

#include <cstdio>

#include "common/string_util.h"

namespace dfdb {

std::string_view ColumnTypeToString(ColumnType type) {
  switch (type) {
    case ColumnType::kInt32:
      return "INT32";
    case ColumnType::kInt64:
      return "INT64";
    case ColumnType::kDouble:
      return "DOUBLE";
    case ColumnType::kChar:
      return "CHAR";
  }
  return "?";
}

StatusOr<double> Value::AsNumeric() const {
  switch (type()) {
    case ColumnType::kInt32:
      return static_cast<double>(as_int32());
    case ColumnType::kInt64:
      return static_cast<double>(as_int64());
    case ColumnType::kDouble:
      return as_double();
    case ColumnType::kChar:
      return Status::InvalidArgument("CHAR value is not numeric");
  }
  return Status::Internal("unreachable");
}

StatusOr<int> Value::Compare(const Value& other) const {
  const bool this_char = type() == ColumnType::kChar;
  const bool other_char = other.type() == ColumnType::kChar;
  if (this_char != other_char) {
    return Status::InvalidArgument(
        StrFormat("cannot compare %s with %s",
                  std::string(ColumnTypeToString(type())).c_str(),
                  std::string(ColumnTypeToString(other.type())).c_str()));
  }
  if (this_char) {
    const int c = as_char().compare(other.as_char());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  // Integer fast path avoids double rounding for large int64s.
  if (type() != ColumnType::kDouble && other.type() != ColumnType::kDouble) {
    const int64_t a = type() == ColumnType::kInt32 ? as_int32() : as_int64();
    const int64_t b =
        other.type() == ColumnType::kInt32 ? other.as_int32() : other.as_int64();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  const double a = AsNumeric().value();
  const double b = other.AsNumeric().value();
  return a < b ? -1 : (a > b ? 1 : 0);
}

uint64_t Value::Hash() const {
  switch (type()) {
    case ColumnType::kInt32: {
      // Hash all numerics through a canonical double-or-int64 form so that
      // equal values of different widths hash identically.
      const int64_t v = as_int32();
      return Hash64(&v, sizeof(v));
    }
    case ColumnType::kInt64: {
      const int64_t v = as_int64();
      return Hash64(&v, sizeof(v));
    }
    case ColumnType::kDouble: {
      const double d = as_double();
      // Integral doubles hash like the equivalent int64.
      const int64_t i = static_cast<int64_t>(d);
      if (static_cast<double>(i) == d) {
        return Hash64(&i, sizeof(i));
      }
      return Hash64(&d, sizeof(d));
    }
    case ColumnType::kChar:
      return Hash64(as_char().data(), as_char().size());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ColumnType::kInt32:
      return StrFormat("%d", as_int32());
    case ColumnType::kInt64:
      return StrFormat("%lld", static_cast<long long>(as_int64()));
    case ColumnType::kDouble:
      return StrFormat("%g", as_double());
    case ColumnType::kChar:
      return as_char();
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

}  // namespace dfdb

/// \file catalog.h
/// \brief Relation metadata and the system catalog.

#ifndef DFDB_CATALOG_CATALOG_H_
#define DFDB_CATALOG_CATALOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/macros.h"
#include "common/status.h"
#include "common/statusor.h"

namespace dfdb {

/// Identifies a base relation in the catalog and its backing heap file.
using RelationId = uint32_t;
constexpr RelationId kInvalidRelationId = 0;

/// \brief Descriptor of one base relation.
struct RelationMeta {
  RelationId id = kInvalidRelationId;
  std::string name;
  Schema schema;

  /// Optimizer-visible statistics, refreshed on load/append.
  uint64_t tuple_count = 0;
  uint64_t page_count = 0;

  int64_t size_bytes() const {
    return static_cast<int64_t>(tuple_count) * schema.tuple_width();
  }
};

/// \brief Descriptor of one secondary index (a CREATE INDEX catalog entry).
///
/// The catalog records only the definition — which relation, which key
/// columns. The built grid-file structures live in the index subsystem
/// (index/index_manager.h) and are (re)built lazily per snapshot version.
struct IndexMeta {
  std::string name;
  std::string relation;
  /// 1–2 numeric key columns, validated against the relation schema at
  /// CreateIndex time (grid files over CHAR keys are not supported).
  std::vector<std::string> columns;
};

/// \brief Thread-safe name -> RelationMeta registry.
///
/// The catalog owns only metadata; tuple storage lives in the StorageEngine
/// keyed by RelationId.
class Catalog {
 public:
  Catalog() = default;
  DFDB_DISALLOW_COPY(Catalog);

  /// Registers a new relation; assigns and returns its id.
  StatusOr<RelationId> CreateRelation(std::string name, Schema schema);

  /// Removes a relation. NotFound if absent.
  Status DropRelation(std::string_view name);

  /// Metadata lookup by name or id (copies out, so callers hold no locks).
  StatusOr<RelationMeta> GetRelation(std::string_view name) const;
  StatusOr<RelationMeta> GetRelation(RelationId id) const;

  bool Exists(std::string_view name) const;

  /// Replaces the stored statistics for \p id.
  Status UpdateStats(RelationId id, uint64_t tuple_count, uint64_t page_count);

  /// Names of all relations, sorted.
  std::vector<std::string> ListRelations() const;

  /// Total bytes across all relations (the paper's "combined size of 5.5
  /// megabytes" is checked against this).
  int64_t TotalBytes() const;

  // --- Secondary indexes ---

  /// Registers a secondary index. Validates that the relation exists, the
  /// index name is new, and the 1–2 key columns are distinct numeric
  /// columns of the relation schema.
  Status CreateIndex(IndexMeta meta);

  /// Removes an index definition. NotFound if absent.
  Status DropIndex(std::string_view name);

  StatusOr<IndexMeta> GetIndex(std::string_view name) const;

  /// All index definitions over \p relation, ordered by index name.
  std::vector<IndexMeta> GetIndexesFor(std::string_view relation) const;

  /// All index definitions, ordered by name.
  std::vector<IndexMeta> ListIndexes() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, RelationMeta, std::less<>> by_name_;
  std::map<RelationId, std::string> id_to_name_;
  std::map<std::string, IndexMeta, std::less<>> indexes_;
  RelationId next_id_ = 1;
};

}  // namespace dfdb

#endif  // DFDB_CATALOG_CATALOG_H_

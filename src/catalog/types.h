/// \file types.h
/// \brief Column types and typed runtime values.
///
/// dfdb uses fixed-width tuples, matching the paper's model (Section 3.3
/// reasons about "100 byte" tuples): every column has a static width, so a
/// tuple's byte layout is fully determined by its Schema. Strings are
/// fixed-width CHAR(n), blank-padded.

#ifndef DFDB_CATALOG_TYPES_H_
#define DFDB_CATALOG_TYPES_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <variant>

#include "common/hash.h"
#include "common/status.h"
#include "common/statusor.h"

namespace dfdb {

/// \brief Supported column types.
enum class ColumnType : uint8_t {
  kInt32 = 0,
  kInt64 = 1,
  kDouble = 2,
  kChar = 3,  ///< Fixed-width character string, blank padded.
};

std::string_view ColumnTypeToString(ColumnType type);

/// Byte width of a fixed type; for kChar the declared width must be used.
inline int FixedTypeWidth(ColumnType type) {
  switch (type) {
    case ColumnType::kInt32:
      return 4;
    case ColumnType::kInt64:
      return 8;
    case ColumnType::kDouble:
      return 8;
    case ColumnType::kChar:
      return -1;  // Width is per-column.
  }
  return -1;
}

/// \brief A typed runtime value (used in predicates and materialized rows).
class Value {
 public:
  Value() : v_(int32_t{0}) {}
  explicit Value(int32_t v) : v_(v) {}
  explicit Value(int64_t v) : v_(v) {}
  explicit Value(double v) : v_(v) {}
  explicit Value(std::string v) : v_(std::move(v)) {}

  static Value Int32(int32_t v) { return Value(v); }
  static Value Int64(int64_t v) { return Value(v); }
  static Value Double(double v) { return Value(v); }
  static Value Char(std::string v) { return Value(std::move(v)); }

  ColumnType type() const {
    switch (v_.index()) {
      case 0:
        return ColumnType::kInt32;
      case 1:
        return ColumnType::kInt64;
      case 2:
        return ColumnType::kDouble;
      default:
        return ColumnType::kChar;
    }
  }

  int32_t as_int32() const { return std::get<int32_t>(v_); }
  int64_t as_int64() const { return std::get<int64_t>(v_); }
  double as_double() const { return std::get<double>(v_); }
  const std::string& as_char() const { return std::get<std::string>(v_); }

  /// Numeric view of any numeric value (int32/int64/double); Char is an
  /// InvalidArgument error.
  StatusOr<double> AsNumeric() const;

  /// Three-way comparison. Numerics compare numerically across widths;
  /// comparing a numeric against a Char is an InvalidArgument error.
  StatusOr<int> Compare(const Value& other) const;

  /// Equality with exact type semantics (for hashing / duplicate
  /// elimination). Distinct numeric widths holding equal numbers compare
  /// equal, matching Compare().
  bool operator==(const Value& other) const {
    auto c = Compare(other);
    return c.ok() && *c == 0;
  }

  uint64_t Hash() const;

  std::string ToString() const;

 private:
  std::variant<int32_t, int64_t, double, std::string> v_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

}  // namespace dfdb

#endif  // DFDB_CATALOG_TYPES_H_

/// \file schema.h
/// \brief Fixed-width tuple schemas.

#ifndef DFDB_CATALOG_SCHEMA_H_
#define DFDB_CATALOG_SCHEMA_H_

#include <string>
#include <vector>

#include "catalog/types.h"
#include "common/status.h"
#include "common/statusor.h"

namespace dfdb {

/// \brief One column: name, type, and byte width (fixed for non-CHAR).
struct Column {
  std::string name;
  ColumnType type = ColumnType::kInt32;
  /// Byte width; must equal FixedTypeWidth(type) for non-CHAR columns.
  int width = 4;

  static Column Int32(std::string name) {
    return Column{std::move(name), ColumnType::kInt32, 4};
  }
  static Column Int64(std::string name) {
    return Column{std::move(name), ColumnType::kInt64, 8};
  }
  static Column Double(std::string name) {
    return Column{std::move(name), ColumnType::kDouble, 8};
  }
  static Column Char(std::string name, int width) {
    return Column{std::move(name), ColumnType::kChar, width};
  }

  bool operator==(const Column& other) const = default;
};

/// \brief An ordered list of columns with a fixed byte layout.
///
/// Columns are laid out back to back with no padding; offsets are
/// precomputed at construction.
class Schema {
 public:
  Schema() = default;

  /// Validates column names (non-empty, unique) and widths.
  static StatusOr<Schema> Create(std::vector<Column> columns);

  /// Like Create() but aborts on invalid input; for statically-known schemas.
  static Schema CreateOrDie(std::vector<Column> columns);

  int num_columns() const { return static_cast<int>(columns_.size()); }
  const Column& column(int i) const { return columns_[static_cast<size_t>(i)]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Byte offset of column \p i within a tuple.
  int offset(int i) const { return offsets_[static_cast<size_t>(i)]; }

  /// Total tuple width in bytes.
  int tuple_width() const { return tuple_width_; }

  /// Index of the column named \p name, or NotFound.
  StatusOr<int> ColumnIndex(std::string_view name) const;

  /// Sub-schema with the given column indices, in the given order.
  /// Duplicate indices are allowed (self-join aliasing); out-of-range
  /// indices are an error.
  StatusOr<Schema> Project(const std::vector<int>& indices) const;

  /// Concatenation of this schema and \p other (join output schema).
  /// Colliding names from \p other get \p suffix appended.
  Schema Concat(const Schema& other, std::string_view suffix = "_r") const;

  /// "name:TYPE(width), ..." rendering.
  std::string ToString() const;

  bool operator==(const Schema& other) const { return columns_ == other.columns_; }

 private:
  explicit Schema(std::vector<Column> columns);

  std::vector<Column> columns_;
  std::vector<int> offsets_;
  int tuple_width_ = 0;
};

}  // namespace dfdb

#endif  // DFDB_CATALOG_SCHEMA_H_

/// \file pushdown.h
/// \brief Near-data predicate pushdown interfaces and counters.
///
/// The paper's segmented per-IC disk cache (Section 4.1) exists so operand
/// pages can be filtered close to where they live instead of saturating the
/// arbitration network (Section 3.3). These types let the storage hierarchy
/// run a compiled restrict during the cache -> local transfer without the
/// storage layer depending on the expression subsystem: the engine adapts a
/// `CompiledPredicate` behind `PushdownFilter` and an output `Edge` behind
/// `PushdownSink`, and `BufferManager::ReadFiltered` ships only surviving
/// tuples up the hierarchy.

#ifndef DFDB_STORAGE_PUSHDOWN_H_
#define DFDB_STORAGE_PUSHDOWN_H_

#include <atomic>
#include <cstdint>

#include "common/slice.h"
#include "common/status.h"

namespace dfdb {

namespace obs {
class MetricsRegistry;
}  // namespace obs

/// \brief A predicate evaluated against raw tuple bytes at a storage level.
///
/// Implementations must be infallible per tuple (the engine guarantees this
/// by only pushing down `CompiledPredicate` programs, whose per-tuple error
/// paths are rejected at compile time) and thread-compatible: `Matches` is
/// called concurrently for distinct pages but never mutates shared state.
class PushdownFilter {
 public:
  virtual ~PushdownFilter() = default;
  virtual bool Matches(const char* tuple) const = 0;
};

/// \brief Receives the tuples that survive a pushed-down read.
class PushdownSink {
 public:
  virtual ~PushdownSink() = default;
  virtual Status Emit(Slice tuple) = 0;
};

/// \brief Outcomes of pushed-down reads (plain snapshot).
///
/// Exported as `engine.pushdown.*` / `machine.pushdown.*` depending on the
/// backend that accumulated them.
struct PushdownCounters {
  /// Pages whose restrict ran inside the storage hierarchy.
  uint64_t pages_filtered = 0;
  /// Tuples scanned at the device by pushed-down programs.
  uint64_t tuples_in = 0;
  /// Tuples that survived and crossed a level boundary.
  uint64_t tuples_out = 0;
  /// Bytes that never crossed the cache -> local (or ring) boundary
  /// because the filter dropped their tuples at the device.
  uint64_t bytes_elided = 0;
  /// Plan-marked scans that fell back to the unfiltered path (predicate
  /// refused compilation or the scan shape changed under it).
  uint64_t fallbacks = 0;

  PushdownCounters& operator+=(const PushdownCounters& o) {
    pages_filtered += o.pages_filtered;
    tuples_in += o.tuples_in;
    tuples_out += o.tuples_out;
    bytes_elided += o.bytes_elided;
    fallbacks += o.fallbacks;
    return *this;
  }

  bool any() const {
    return pages_filtered != 0 || tuples_in != 0 || tuples_out != 0 ||
           bytes_elided != 0 || fallbacks != 0;
  }
};

/// \brief Thread-safe accumulator for PushdownCounters.
struct PushdownStats {
  std::atomic<uint64_t> pages_filtered{0};
  std::atomic<uint64_t> tuples_in{0};
  std::atomic<uint64_t> tuples_out{0};
  std::atomic<uint64_t> bytes_elided{0};
  std::atomic<uint64_t> fallbacks{0};

  void Add(const PushdownCounters& c) {
    pages_filtered.fetch_add(c.pages_filtered, std::memory_order_relaxed);
    tuples_in.fetch_add(c.tuples_in, std::memory_order_relaxed);
    tuples_out.fetch_add(c.tuples_out, std::memory_order_relaxed);
    bytes_elided.fetch_add(c.bytes_elided, std::memory_order_relaxed);
    fallbacks.fetch_add(c.fallbacks, std::memory_order_relaxed);
  }

  PushdownCounters Snapshot() const {
    PushdownCounters c;
    c.pages_filtered = pages_filtered.load(std::memory_order_relaxed);
    c.tuples_in = tuples_in.load(std::memory_order_relaxed);
    c.tuples_out = tuples_out.load(std::memory_order_relaxed);
    c.bytes_elided = bytes_elided.load(std::memory_order_relaxed);
    c.fallbacks = fallbacks.load(std::memory_order_relaxed);
    return c;
  }
};

/// Registers every counter under \p prefix, e.g. `engine.pushdown.` ->
/// `engine.pushdown.pages_filtered`, `engine.pushdown.bytes_elided`, ...
void RegisterPushdownMetrics(const PushdownCounters& counters,
                             const char* prefix,
                             obs::MetricsRegistry* registry);

}  // namespace dfdb

#endif  // DFDB_STORAGE_PUSHDOWN_H_

#include "storage/storage_engine.h"

#include "common/logging.h"
#include "common/macros.h"

namespace dfdb {

StorageEngine::StorageEngine(int default_page_bytes)
    : default_page_bytes_(default_page_bytes) {}

StatusOr<RelationId> StorageEngine::CreateRelation(std::string name,
                                                   Schema schema,
                                                   CreateRelationOptions opts) {
  const int page_bytes =
      opts.page_bytes > 0 ? opts.page_bytes : default_page_bytes_;
  if (page_bytes < schema.tuple_width()) {
    return Status::InvalidArgument(
        "page size cannot hold a single tuple of this schema");
  }
  DFDB_ASSIGN_OR_RETURN(RelationId id,
                        catalog_.CreateRelation(name, schema));
  std::lock_guard<std::mutex> lock(mu_);
  files_.emplace(id, std::make_unique<HeapFile>(id, std::move(schema),
                                                page_bytes, &store_, &mvcc_));
  return id;
}

Status StorageEngine::DropRelation(std::string_view name) {
  DFDB_ASSIGN_OR_RETURN(RelationMeta meta, catalog_.GetRelation(name));
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(meta.id);
    if (it != files_.end()) {
      for (PageId pid : it->second->AllPageIds()) {
        // Best effort: a page may already have been freed by a consumer.
        (void)store_.Free(pid);
      }
      files_.erase(it);
    }
  }
  if (RelationIndexCache* cache = index_cache()) {
    cache->OnRelationDropped(meta.id);
  }
  return catalog_.DropRelation(name);
}

StatusOr<HeapFile*> StorageEngine::GetHeapFile(RelationRef rel) {
  RelationId id = rel.id();
  if (rel.by_name()) {
    DFDB_ASSIGN_OR_RETURN(RelationMeta meta, catalog_.GetRelation(rel.name()));
    id = meta.id;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(id);
  if (it == files_.end()) {
    return Status::NotFound("no heap file for relation id");
  }
  return it->second.get();
}

Status StorageEngine::SyncStats(RelationRef rel) {
  DFDB_ASSIGN_OR_RETURN(HeapFile * file, GetHeapFile(rel));
  DFDB_RETURN_IF_ERROR(CommitRelation(file->relation()));
  return catalog_.UpdateStats(file->relation(), file->tuple_count(),
                              file->page_count());
}

Status StorageEngine::SyncAllStats() {
  for (const std::string& name : catalog_.ListRelations()) {
    DFDB_RETURN_IF_ERROR(SyncStats(name));
  }
  return Status::OK();
}

Snapshot StorageEngine::CaptureSnapshot() {
  auto state = std::make_shared<Snapshot::State>();
  state->engine = this;
  std::lock_guard<std::mutex> lock(snap_mu_);
  state->ts = last_commit_ts_;
  open_snapshots_.insert(state->ts);
  ++snapshots_captured_;
  return Snapshot(std::move(state));
}

Status StorageEngine::CommitRelation(RelationRef rel) {
  DFDB_ASSIGN_OR_RETURN(HeapFile * file, GetHeapFile(rel));
  uint64_t min_live = 0;
  {
    // Assigning the timestamp and installing the version both happen under
    // snap_mu_: a capture serialized before sees the old clock, one after
    // sees the version already installed.
    std::lock_guard<std::mutex> lock(snap_mu_);
    if (!file->dirty()) return Status::OK();
    DFDB_RETURN_IF_ERROR(file->Commit(last_commit_ts_ + 1));
    ++last_commit_ts_;
    min_live = MinLiveSnapshotLocked();
  }
  // Opportunistic GC keeps the no-snapshot case at the historical storage
  // footprint: with nothing open, the superseded version dies right here.
  file->GcUpTo(min_live);
  return Status::OK();
}

Status StorageEngine::RollbackRelation(RelationRef rel) {
  DFDB_ASSIGN_OR_RETURN(HeapFile * file, GetHeapFile(rel));
  std::lock_guard<std::mutex> lock(snap_mu_);
  return file->RollbackToCommitted();
}

uint64_t StorageEngine::last_commit_ts() const {
  std::lock_guard<std::mutex> lock(snap_mu_);
  return last_commit_ts_;
}

MvccStats StorageEngine::mvcc_stats() const {
  MvccStats stats;
  {
    std::lock_guard<std::mutex> lock(snap_mu_);
    stats.snapshots_open = open_snapshots_.size();
    stats.snapshots_captured = snapshots_captured_;
    stats.last_commit_ts = last_commit_ts_;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, file] : files_) {
      stats.versions_live += file->version_count();
    }
  }
  stats.pages_copied = mvcc_.pages_copied.load(std::memory_order_relaxed);
  stats.gc_reclaimed = mvcc_.gc_reclaimed.load(std::memory_order_relaxed);
  stats.commits = mvcc_.commits.load(std::memory_order_relaxed);
  return stats;
}

StatusOr<SnapshotView> StorageEngine::ViewAtSnapshot(RelationRef rel,
                                                     uint64_t ts) {
  DFDB_ASSIGN_OR_RETURN(HeapFile * file, GetHeapFile(rel));
  HeapFileVersion version = file->ViewAt(ts);
  SnapshotView view;
  view.relation = file->relation();
  view.commit_ts = version.commit_ts;
  view.pages = std::move(version.pages);
  view.tuple_count = version.tuple_count;
  return view;
}

void StorageEngine::ReleaseSnapshot(uint64_t ts) {
  uint64_t min_live = 0;
  {
    std::lock_guard<std::mutex> lock(snap_mu_);
    auto it = open_snapshots_.find(ts);
    DFDB_CHECK(it != open_snapshots_.end())
        << "releasing a snapshot that is not open";
    open_snapshots_.erase(it);
    min_live = MinLiveSnapshotLocked();
  }
  GcAllFiles(min_live);
}

void StorageEngine::GcAllFiles(uint64_t min_live_ts) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, file] : files_) {
    file->GcUpTo(min_live_ts);
  }
}

uint64_t StorageEngine::MinLiveSnapshotLocked() const {
  return open_snapshots_.empty() ? last_commit_ts_ : *open_snapshots_.begin();
}

RelationIndexCache* StorageEngine::GetOrCreateIndexCache(
    const std::function<std::unique_ptr<RelationIndexCache>()>& factory) {
  std::lock_guard<std::mutex> lock(index_cache_mu_);
  if (index_cache_ == nullptr) index_cache_ = factory();
  return index_cache_.get();
}

RelationIndexCache* StorageEngine::index_cache() const {
  std::lock_guard<std::mutex> lock(index_cache_mu_);
  return index_cache_.get();
}

}  // namespace dfdb

#include "storage/storage_engine.h"

#include "common/macros.h"

namespace dfdb {

StorageEngine::StorageEngine(int default_page_bytes)
    : default_page_bytes_(default_page_bytes) {}

StatusOr<RelationId> StorageEngine::CreateRelation(std::string name,
                                                   Schema schema) {
  return CreateRelation(std::move(name), std::move(schema),
                        default_page_bytes_);
}

StatusOr<RelationId> StorageEngine::CreateRelation(std::string name,
                                                   Schema schema,
                                                   int page_bytes) {
  if (page_bytes < schema.tuple_width()) {
    return Status::InvalidArgument(
        "page size cannot hold a single tuple of this schema");
  }
  DFDB_ASSIGN_OR_RETURN(RelationId id,
                        catalog_.CreateRelation(name, schema));
  std::lock_guard<std::mutex> lock(mu_);
  files_.emplace(id, std::make_unique<HeapFile>(id, std::move(schema),
                                                page_bytes, &store_));
  return id;
}

Status StorageEngine::DropRelation(std::string_view name) {
  DFDB_ASSIGN_OR_RETURN(RelationMeta meta, catalog_.GetRelation(name));
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(meta.id);
    if (it != files_.end()) {
      for (PageId pid : it->second->PageIds()) {
        // Best effort: a page may already have been freed by a consumer.
        (void)store_.Free(pid);
      }
      files_.erase(it);
    }
  }
  return catalog_.DropRelation(name);
}

StatusOr<HeapFile*> StorageEngine::GetHeapFile(RelationId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(id);
  if (it == files_.end()) {
    return Status::NotFound("no heap file for relation id");
  }
  return it->second.get();
}

StatusOr<HeapFile*> StorageEngine::GetHeapFile(std::string_view name) {
  DFDB_ASSIGN_OR_RETURN(RelationMeta meta, catalog_.GetRelation(name));
  return GetHeapFile(meta.id);
}

Status StorageEngine::SyncStats(RelationId id) {
  DFDB_ASSIGN_OR_RETURN(HeapFile * file, GetHeapFile(id));
  DFDB_RETURN_IF_ERROR(file->Flush());
  return catalog_.UpdateStats(id, file->tuple_count(), file->page_count());
}

Status StorageEngine::SyncAllStats() {
  for (const std::string& name : catalog_.ListRelations()) {
    DFDB_ASSIGN_OR_RETURN(RelationMeta meta, catalog_.GetRelation(name));
    DFDB_RETURN_IF_ERROR(SyncStats(meta.id));
  }
  return Status::OK();
}

}  // namespace dfdb

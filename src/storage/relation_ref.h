/// \file relation_ref.h
/// \brief Lightweight relation designator: by id or by name.

#ifndef DFDB_STORAGE_RELATION_REF_H_
#define DFDB_STORAGE_RELATION_REF_H_

#include <string>
#include <string_view>

#include "catalog/catalog.h"

namespace dfdb {

/// \brief Names a relation either by catalog id or by name.
///
/// A transient parameter type (like std::string_view: it does not own the
/// name), letting StorageEngine expose one signature per operation instead
/// of an id/name overload pair. Implicitly constructible from both spellings
/// so call sites read naturally: `GetHeapFile(id)`, `GetHeapFile("r10")`.
class RelationRef {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor)
  RelationRef(RelationId id) : id_(id) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  RelationRef(std::string_view name) : name_(name) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  RelationRef(const std::string& name) : name_(name) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  RelationRef(const char* name) : name_(name) {}

  bool by_name() const { return !name_.empty(); }
  RelationId id() const { return id_; }
  std::string_view name() const { return name_; }

 private:
  RelationId id_ = kInvalidRelationId;
  std::string_view name_;
};

}  // namespace dfdb

#endif  // DFDB_STORAGE_RELATION_REF_H_

#include "storage/snapshot.h"

#include "storage/storage_engine.h"

namespace dfdb {

Snapshot::State::~State() {
  if (engine != nullptr && !released.load(std::memory_order_acquire)) {
    engine->ReleaseSnapshot(ts);
  }
}

uint64_t Snapshot::ts() const { return state_ != nullptr ? state_->ts : 0; }

StatusOr<SnapshotView> Snapshot::View(RelationRef rel) const {
  if (state_ == nullptr) {
    return Status::FailedPrecondition("invalid snapshot handle");
  }
  return state_->engine->ViewAtSnapshot(rel, state_->ts);
}

void Snapshot::Release() {
  if (state_ == nullptr) return;
  bool expected = false;
  if (state_->released.compare_exchange_strong(expected, true,
                                               std::memory_order_acq_rel)) {
    state_->engine->ReleaseSnapshot(state_->ts);
  }
}

}  // namespace dfdb

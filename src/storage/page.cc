#include "storage/page.h"

#include <cstring>

#include "common/string_util.h"

namespace dfdb {

namespace {
// Serialized header: relation(4) tuple_width(4) capacity(4) count(4).
constexpr size_t kHeaderBytes = 16;

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

uint32_t GetU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
}  // namespace

StatusOr<Page> Page::Create(RelationId relation, int tuple_width,
                            int capacity_bytes) {
  if (tuple_width <= 0) {
    return Status::InvalidArgument(
        StrFormat("tuple width must be positive, got %d", tuple_width));
  }
  if (capacity_bytes < tuple_width) {
    return Status::InvalidArgument(
        StrFormat("page capacity %d bytes cannot hold a %d-byte tuple",
                  capacity_bytes, tuple_width));
  }
  return Page(relation, tuple_width, capacity_bytes);
}

Status Page::Append(Slice tuple) {
  if (static_cast<int>(tuple.size()) != tuple_width_) {
    return Status::InvalidArgument(
        StrFormat("tuple is %zu bytes, page expects %d", tuple.size(),
                  tuple_width_));
  }
  if (full()) {
    return Status::ResourceExhausted("page is full");
  }
  data_.insert(data_.end(), tuple.data(), tuple.data() + tuple.size());
  ++num_tuples_;
  return Status::OK();
}

Status Page::AppendParts(const Slice* parts, size_t n) {
  size_t total = 0;
  for (size_t i = 0; i < n; ++i) total += parts[i].size();
  if (static_cast<int>(total) != tuple_width_) {
    return Status::InvalidArgument(
        StrFormat("tuple parts sum to %zu bytes, page expects %d", total,
                  tuple_width_));
  }
  if (full()) {
    return Status::ResourceExhausted("page is full");
  }
  for (size_t i = 0; i < n; ++i) {
    data_.insert(data_.end(), parts[i].data(), parts[i].data() + parts[i].size());
  }
  ++num_tuples_;
  return Status::OK();
}

StatusOr<int> Page::FillFrom(const Page& other, int from_tuple) {
  if (other.tuple_width_ != tuple_width_) {
    return Status::InvalidArgument("tuple widths differ");
  }
  if (from_tuple < 0 || from_tuple > other.num_tuples_) {
    return Status::OutOfRange("from_tuple out of range");
  }
  int copied = 0;
  for (int i = from_tuple; i < other.num_tuples_ && !full(); ++i) {
    Status s = Append(other.tuple(i));
    if (!s.ok()) return s;
    ++copied;
  }
  return copied;
}

std::string Page::Serialize() const {
  std::string out;
  out.reserve(kHeaderBytes + data_.size());
  PutU32(&out, relation_);
  PutU32(&out, static_cast<uint32_t>(tuple_width_));
  PutU32(&out, static_cast<uint32_t>(capacity_bytes_));
  PutU32(&out, static_cast<uint32_t>(num_tuples_));
  out.append(data_.data(), data_.size());
  return out;
}

StatusOr<Page> Page::Deserialize(Slice bytes) {
  if (bytes.size() < kHeaderBytes) {
    return Status::Corruption("page too short for header");
  }
  const RelationId relation = GetU32(bytes.data());
  const int tuple_width = static_cast<int>(GetU32(bytes.data() + 4));
  const int capacity = static_cast<int>(GetU32(bytes.data() + 8));
  const int count = static_cast<int>(GetU32(bytes.data() + 12));
  auto page = Create(relation, tuple_width, capacity);
  if (!page.ok()) {
    return Status::Corruption("bad page header: " +
                              std::string(page.status().message()));
  }
  const size_t payload = static_cast<size_t>(count) * tuple_width;
  if (count < 0 || count > page->capacity_tuples() ||
      bytes.size() != kHeaderBytes + payload) {
    return Status::Corruption("page payload size mismatch");
  }
  for (int i = 0; i < count; ++i) {
    Status s = page->Append(
        Slice(bytes.data() + kHeaderBytes + static_cast<size_t>(i) * tuple_width,
              static_cast<size_t>(tuple_width)));
    if (!s.ok()) return s;
  }
  return *std::move(page);
}

}  // namespace dfdb

#include "storage/page_store.h"

#include "common/string_util.h"

namespace dfdb {

PageId PageStore::Put(PagePtr page) {
  std::lock_guard<std::mutex> lock(mu_);
  const PageId id = next_id_++;
  stats_.pages_written++;
  stats_.bytes_written += static_cast<uint64_t>(page->payload_bytes());
  pages_.emplace(id, std::move(page));
  return id;
}

StatusOr<PagePtr> PageStore::Get(PageId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pages_.find(id);
  if (it == pages_.end()) {
    return Status::NotFound(StrFormat("page %llu not in store",
                                      static_cast<unsigned long long>(id)));
  }
  stats_.pages_read++;
  stats_.bytes_read += static_cast<uint64_t>(it->second->payload_bytes());
  return it->second;
}

Status PageStore::Free(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (pages_.erase(id) == 0) {
    return Status::NotFound(StrFormat("page %llu not in store",
                                      static_cast<unsigned long long>(id)));
  }
  return Status::OK();
}

size_t PageStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pages_.size();
}

int64_t PageStore::TotalPayloadBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& [id, page] : pages_) total += page->payload_bytes();
  return total;
}

PageStoreStats PageStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void PageStore::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = PageStoreStats{};
}

}  // namespace dfdb

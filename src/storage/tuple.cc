#include "storage/tuple.h"

#include <cstring>

#include "common/string_util.h"

namespace dfdb {

StatusOr<std::string> EncodeTuple(const Schema& schema,
                                  const std::vector<Value>& values) {
  if (static_cast<int>(values.size()) != schema.num_columns()) {
    return Status::InvalidArgument(
        StrFormat("expected %d values, got %zu", schema.num_columns(),
                  values.size()));
  }
  std::string out(static_cast<size_t>(schema.tuple_width()), '\0');
  for (int i = 0; i < schema.num_columns(); ++i) {
    const Column& col = schema.column(i);
    const Value& v = values[static_cast<size_t>(i)];
    char* dst = out.data() + schema.offset(i);
    if (v.type() != col.type) {
      return Status::InvalidArgument(
          StrFormat("column %s: value type %s does not match column type %s",
                    col.name.c_str(),
                    std::string(ColumnTypeToString(v.type())).c_str(),
                    std::string(ColumnTypeToString(col.type)).c_str()));
    }
    switch (col.type) {
      case ColumnType::kInt32: {
        const int32_t x = v.as_int32();
        std::memcpy(dst, &x, 4);
        break;
      }
      case ColumnType::kInt64: {
        const int64_t x = v.as_int64();
        std::memcpy(dst, &x, 8);
        break;
      }
      case ColumnType::kDouble: {
        const double x = v.as_double();
        std::memcpy(dst, &x, 8);
        break;
      }
      case ColumnType::kChar: {
        const std::string& s = v.as_char();
        if (static_cast<int>(s.size()) > col.width) {
          return Status::InvalidArgument(
              StrFormat("column %s: string of %zu bytes exceeds CHAR(%d)",
                        col.name.c_str(), s.size(), col.width));
        }
        std::memcpy(dst, s.data(), s.size());
        std::memset(dst + s.size(), ' ', static_cast<size_t>(col.width) - s.size());
        break;
      }
    }
  }
  return out;
}

Status TupleView::Validate() const {
  if (static_cast<int>(data_.size()) != schema_->tuple_width()) {
    return Status::InvalidArgument(
        StrFormat("tuple is %zu bytes, schema requires %d", data_.size(),
                  schema_->tuple_width()));
  }
  return Status::OK();
}

StatusOr<Value> TupleView::GetValue(int col) const {
  if (col < 0 || col >= schema_->num_columns()) {
    return Status::OutOfRange(StrFormat("column %d out of range", col));
  }
  const Column& c = schema_->column(col);
  const char* src = data_.data() + schema_->offset(col);
  switch (c.type) {
    case ColumnType::kInt32: {
      int32_t x;
      std::memcpy(&x, src, 4);
      return Value::Int32(x);
    }
    case ColumnType::kInt64: {
      int64_t x;
      std::memcpy(&x, src, 8);
      return Value::Int64(x);
    }
    case ColumnType::kDouble: {
      double x;
      std::memcpy(&x, src, 8);
      return Value::Double(x);
    }
    case ColumnType::kChar:
      return Value::Char(std::string(src, TrimmedCharLen(src, c.width)));
  }
  return Status::Internal("unreachable");
}

Slice TupleView::GetRaw(int col) const {
  const Column& c = schema_->column(col);
  return Slice(data_.data() + schema_->offset(col),
               static_cast<size_t>(c.width));
}

StatusOr<int> TupleView::CompareColumn(int col, const TupleView& other,
                                       int other_col) const {
  if (col < 0 || col >= schema_->num_columns() || other_col < 0 ||
      other_col >= other.schema_->num_columns()) {
    return Status::OutOfRange("column index out of range");
  }
  const Column& a = schema_->column(col);
  const Column& b = other.schema_->column(other_col);
  if (a.type == b.type && a.type != ColumnType::kDouble) {
    // Fast paths on raw bytes for identical types.
    if (a.type == ColumnType::kChar) {
      if (a.width == b.width) {
        return GetRaw(col).compare(other.GetRaw(other_col));
      }
    } else {
      if (a.type == ColumnType::kInt32) {
        int32_t x, y;
        std::memcpy(&x, GetRaw(col).data(), 4);
        std::memcpy(&y, other.GetRaw(other_col).data(), 4);
        return x < y ? -1 : (x > y ? 1 : 0);
      }
      int64_t x, y;
      std::memcpy(&x, GetRaw(col).data(), 8);
      std::memcpy(&y, other.GetRaw(other_col).data(), 8);
      return x < y ? -1 : (x > y ? 1 : 0);
    }
  }
  auto va = GetValue(col);
  if (!va.ok()) return va.status();
  auto vb = other.GetValue(other_col);
  if (!vb.ok()) return vb.status();
  return va->Compare(*vb);
}

std::string TupleView::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(static_cast<size_t>(schema_->num_columns()));
  for (int i = 0; i < schema_->num_columns(); ++i) {
    auto v = GetValue(i);
    parts.push_back(v.ok() ? v->ToString() : "<err>");
  }
  // Spelled out (not `"(" + ... + ")"`): the rvalue operator+ chain trips
  // a gcc-12 -Werror=restrict false positive at -O2.
  std::string out = "(";
  out += JoinStrings(parts, ", ");
  out += ")";
  return out;
}

std::string ConcatTuples(Slice left, Slice right) {
  std::string out;
  out.reserve(left.size() + right.size());
  out.append(left.data(), left.size());
  out.append(right.data(), right.size());
  return out;
}

std::string ProjectTuple(const Schema& schema, Slice src,
                         const std::vector<int>& indices) {
  std::string out;
  ProjectTupleInto(schema, src, indices, &out);
  return out;
}

void ProjectTupleInto(const Schema& schema, Slice src,
                      const std::vector<int>& indices, std::string* out) {
  out->clear();
  for (int i : indices) {
    const Column& c = schema.column(i);
    out->append(src.data() + schema.offset(i), static_cast<size_t>(c.width));
  }
}

}  // namespace dfdb

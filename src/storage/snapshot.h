/// \file snapshot.h
/// \brief MVCC snapshot reads: immutable per-query views of versioned
/// heap files.
///
/// Section 4.0 requires "careful control of which queries are permitted to
/// execute concurrently". Relation-granularity locking alone makes every
/// reader queue behind every writer; versioned storage removes that: each
/// committed mutation installs a new page-id list for its relation under a
/// monotone commit timestamp, and a query reads through a Snapshot handle
/// captured at admission. Readers never block and never see a torn write —
/// they resolve each relation to the newest version committed at or before
/// the snapshot timestamp. Writers still serialize against each other
/// through the admission queue (writer–writer conflicts only).
///
/// Page versioning is copy-on-write at page granularity: sealed pages are
/// immutable, appends only add pages, and DeleteWhere rewrites survivors
/// into fresh pages — so a version is just a list of page ids, and an old
/// version stays byte-identically readable until version GC frees its
/// retired pages (only once no live snapshot can see them).

#ifndef DFDB_STORAGE_SNAPSHOT_H_
#define DFDB_STORAGE_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/statusor.h"
#include "storage/page.h"
#include "storage/relation_ref.h"

namespace dfdb {

class StorageEngine;

/// \brief Read-only view of one relation at a snapshot timestamp: the
/// sealed pages and tuple count of the newest version committed at or
/// before the snapshot. This is what scan/restrict/join kernels consume;
/// writers go through StorageEngine::GetHeapFile and install a new version
/// at commit.
struct SnapshotView {
  RelationId relation = kInvalidRelationId;
  /// Timestamp of the version this view resolved to (<= the snapshot ts).
  uint64_t commit_ts = 0;
  std::vector<PageId> pages;
  uint64_t tuple_count = 0;
};

/// \brief Handle to one immutable point-in-time view of the database.
///
/// Captured via StorageEngine::CaptureSnapshot(); cheap to copy (shared
/// state). While any copy is alive, every page visible at ts() is pinned
/// against version GC. The pin drops when the last copy is destroyed or
/// Release() is called. The StorageEngine must outlive every snapshot
/// captured from it.
class Snapshot {
 public:
  /// Invalid handle: valid() is false and View() fails.
  Snapshot() = default;

  bool valid() const { return state_ != nullptr; }

  /// The commit timestamp this snapshot reads at (0 for invalid handles).
  uint64_t ts() const;

  /// Resolves \p rel to the newest version committed at or before ts().
  /// NotFound when the relation does not exist; FailedPrecondition on an
  /// invalid handle.
  StatusOr<SnapshotView> View(RelationRef rel) const;

  /// Drops this handle's pin early (idempotent across copies sharing the
  /// state). Retired pages only this snapshot could see become
  /// reclaimable.
  void Release();

 private:
  friend class StorageEngine;

  struct State {
    StorageEngine* engine = nullptr;
    uint64_t ts = 0;
    std::atomic<bool> released{false};
    ~State();
  };

  explicit Snapshot(std::shared_ptr<State> state) : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

/// \brief Storage-wide MVCC statistics (the engine.mvcc.* counter family).
struct MvccStats {
  uint64_t snapshots_open = 0;      ///< Live (unreleased) snapshots.
  uint64_t snapshots_captured = 0;  ///< Lifetime captures.
  uint64_t versions_live = 0;       ///< Version records across heap files.
  uint64_t pages_copied = 0;        ///< Copy-on-write page rewrites.
  uint64_t gc_reclaimed = 0;        ///< Retired pages freed by version GC.
  uint64_t commits = 0;             ///< Versions installed.
  uint64_t last_commit_ts = 0;      ///< Current commit clock.
};

/// \brief Shared atomic counters behind MvccStats, owned by the
/// StorageEngine and updated by its heap files.
struct MvccCounters {
  std::atomic<uint64_t> pages_copied{0};
  std::atomic<uint64_t> gc_reclaimed{0};
  std::atomic<uint64_t> commits{0};
};

}  // namespace dfdb

#endif  // DFDB_STORAGE_SNAPSHOT_H_

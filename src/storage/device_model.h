/// \file device_model.h
/// \brief Timing models of the paper's hardware (Section 4.1 / Figure 4.2).
///
/// The paper's Figure 4.2 assumptions:
///   - 16 KB operand pages;
///   - PDP LSI-11 instruction processors that "can read a 16K byte page in
///     33 ms";
///   - a disk cache built from Intel 2314 CCD chips;
///   - two IBM 3330 disk drives for mass storage;
///   - a 40 Mbps DLCN ring (25 ns shift registers), 1–2 Mbps inner ring.
///
/// These models are pure functions from byte counts to SimTime, so the
/// discrete-event simulator remains deterministic.

#ifndef DFDB_STORAGE_DEVICE_MODEL_H_
#define DFDB_STORAGE_DEVICE_MODEL_H_

#include <cstdint>

#include "common/sim_time.h"

namespace dfdb {

/// \brief Moving-head disk model (defaults: IBM 3330).
struct DiskModel {
  /// Average seek time.
  SimTime avg_seek = SimTime::Micros(30000);
  /// Average rotational latency (half a revolution at 3600 rpm).
  SimTime avg_rotation = SimTime::Micros(8400);
  /// Sustained transfer rate in bytes per second (3330: 806 KB/s).
  double transfer_bytes_per_sec = 806000.0;

  /// Time to read or write \p bytes with one random positioning.
  SimTime AccessTime(int64_t bytes) const {
    return avg_seek + avg_rotation +
           TransferTime(bytes, transfer_bytes_per_sec * 8.0);
  }

  /// Transfer-only time (sequential continuation).
  SimTime SequentialTime(int64_t bytes) const {
    return TransferTime(bytes, transfer_bytes_per_sec * 8.0);
  }
};

/// \brief CCD disk-cache model (Intel 2314-class electronic disk).
///
/// CCD memories are block-oriented with a small access latency and a high
/// streaming rate; we model a fixed per-access latency plus transfer.
struct CcdCacheModel {
  SimTime access_latency = SimTime::Micros(100);
  double transfer_bytes_per_sec = 4.0e6;  // ~4 MB/s per port.
  /// Internal scan rate of a pushed-down predicate sweeping a block inside
  /// the cache. The multiport CCD array's aggregate internal bandwidth is
  /// well above what one port can ship (the segments cycle in parallel), so
  /// filtering in place is cheaper than moving: 4x the port rate.
  double filter_scan_bytes_per_sec = 16.0e6;

  SimTime AccessTime(int64_t bytes) const {
    return access_latency + TransferTime(bytes, transfer_bytes_per_sec * 8.0);
  }

  /// Cost of a filtered transfer: the pushed-down program scans
  /// \p scanned_bytes at the internal rate, but only \p surviving_bytes
  /// occupy the port. Charging the two rates separately is what makes
  /// near-data filtering a win exactly when selectivity is high.
  SimTime FilteredAccessTime(int64_t scanned_bytes,
                             int64_t surviving_bytes) const {
    return access_latency +
           TransferTime(scanned_bytes, filter_scan_bytes_per_sec * 8.0) +
           TransferTime(surviving_bytes, transfer_bytes_per_sec * 8.0);
  }
};

/// \brief Instruction-processor model (default: PDP LSI-11).
///
/// The paper's calibration point is "can read a 16K byte page in 33 ms",
/// i.e. ~0.496 MB/s of tuple processing. Joins touch outer x inner bytes;
/// restricts touch each byte once; a per-packet fixed overhead covers
/// instruction decode and buffer setup.
struct ProcessorModel {
  /// Bytes of tuple data scanned per second (16384 B / 33 ms).
  double scan_bytes_per_sec = 16384.0 / 0.033;
  /// Fixed cost to accept and decode an instruction packet.
  SimTime packet_overhead = SimTime::Micros(500);
  /// Multiplier for producing one byte of output (copy cost).
  double output_bytes_per_sec = 16384.0 / 0.033;

  /// Time to scan \p input_bytes and emit \p output_bytes.
  SimTime OperatorTime(int64_t input_bytes, int64_t output_bytes) const {
    return packet_overhead + TransferTime(input_bytes, scan_bytes_per_sec * 8.0) +
           TransferTime(output_bytes, output_bytes_per_sec * 8.0);
  }

  /// Time for a page-x-page nested-loops join step: every outer tuple is
  /// compared against every inner tuple, so cost scales with the product of
  /// page sizes divided by tuple width (comparisons) — approximated as
  /// scanning outer_bytes * (inner_bytes / inner_tuple_width) weighted by a
  /// per-comparison fraction of the scan rate.
  SimTime JoinStepTime(int64_t outer_bytes, int64_t inner_bytes,
                       int64_t output_bytes) const {
    // Effective work: each outer byte participates in one pass over the
    // inner page, discounted because a comparison touches only the join
    // attribute (~1/8 of the tuple).
    const double pair_bytes =
        static_cast<double>(outer_bytes) * static_cast<double>(inner_bytes) /
        2048.0;
    return packet_overhead +
           TransferTime(static_cast<int64_t>(pair_bytes),
                        scan_bytes_per_sec * 8.0) +
           TransferTime(outer_bytes + inner_bytes, scan_bytes_per_sec * 8.0) +
           TransferTime(output_bytes, output_bytes_per_sec * 8.0);
  }
};

/// \brief Shift-register-insertion ring (DLCN, Liu & Reames).
///
/// Variable-length messages are inserted into the loop; per-hop delay is one
/// shift-register stage. Defaults give the paper's 40 Mbps outer ring.
struct RingModel {
  double bandwidth_bits_per_sec = 40.0e6;
  /// Delay contributed by each station's insertion register.
  SimTime per_hop_delay = SimTime::Nanos(25);

  /// Time for a message of \p bytes to fully pass the insertion point.
  SimTime InsertionTime(int64_t bytes) const {
    return TransferTime(bytes, bandwidth_bits_per_sec);
  }

  /// Propagation over \p hops stations.
  SimTime PropagationTime(int hops) const { return per_hop_delay * hops; }
};

/// \brief Full machine configuration (Section 4.1's component list).
struct MachineConfig {
  int num_instruction_processors = 8;
  int num_instruction_controllers = 4;
  /// The paper's benchmark uses two memory cells per processor.
  int memory_cells_per_processor = 2;
  int page_bytes = 16384;
  int num_disk_drives = 2;
  /// IC local memory capacity, in pages per IC. LSI-11-class controllers
  /// had on the order of 128 KB of memory: 8 pages of 16 KB.
  int ic_local_memory_pages = 8;
  /// Total disk-cache capacity in pages (divided among the ICs,
  /// Section 4.1). A 1979 CCD electronic disk was ~1 MB: 64 x 16 KB.
  int disk_cache_pages = 64;

  DiskModel disk;
  CcdCacheModel cache;
  ProcessorModel processor;
  RingModel outer_ring;
  RingModel inner_ring{1.5e6, SimTime::Nanos(25)};
};

}  // namespace dfdb

#endif  // DFDB_STORAGE_DEVICE_MODEL_H_

/// \file heap_file.h
/// \brief Heap files: base-relation tuple storage over the PageStore.

#ifndef DFDB_STORAGE_HEAP_FILE_H_
#define DFDB_STORAGE_HEAP_FILE_H_

#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "catalog/catalog.h"
#include "common/macros.h"
#include "storage/page.h"
#include "storage/page_store.h"
#include "storage/tuple.h"

namespace dfdb {

/// \brief Append-oriented tuple storage for one relation.
///
/// Tuples accumulate in an open page; when it fills it is sealed into the
/// PageStore and recorded. Delete is supported by rewriting affected pages
/// (fine at 1979 scale and for the paper's `delete` query-tree operator).
class HeapFile {
 public:
  HeapFile(RelationId relation, Schema schema, int page_bytes,
           PageStore* store);
  DFDB_DISALLOW_COPY(HeapFile);

  RelationId relation() const { return relation_; }
  const Schema& schema() const { return schema_; }
  int page_bytes() const { return page_bytes_; }

  /// Appends one row of Values.
  Status Append(const std::vector<Value>& values);

  /// Appends a pre-encoded tuple (must match the schema width).
  Status AppendEncoded(Slice tuple);

  /// Appends every tuple of \p page (the query-tree `append` operator).
  Status AppendPage(const Page& page);

  /// Seals the open page (if non-empty) so scans see all data.
  Status Flush();

  /// Ids of all sealed pages, in order.
  std::vector<PageId> PageIds() const;

  uint64_t tuple_count() const;
  uint64_t page_count() const;

  /// Removes tuples matching \p pred (exact byte equality against an
  /// encoded tuple is handled by the caller providing the predicate).
  /// Returns the number removed. Pages are rewritten compactly.
  StatusOr<uint64_t> DeleteWhere(
      const std::function<bool(const TupleView&)>& pred);

 private:
  Status SealCurrentLocked();

  const RelationId relation_;
  const Schema schema_;
  const int page_bytes_;
  PageStore* store_;

  mutable std::mutex mu_;
  std::vector<PageId> pages_;
  std::unique_ptr<Page> current_;
  uint64_t tuple_count_ = 0;
};

}  // namespace dfdb

#endif  // DFDB_STORAGE_HEAP_FILE_H_

/// \file heap_file.h
/// \brief Heap files: base-relation tuple storage over the PageStore.

#ifndef DFDB_STORAGE_HEAP_FILE_H_
#define DFDB_STORAGE_HEAP_FILE_H_

#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "common/macros.h"
#include "index/zone_map.h"
#include "storage/page.h"
#include "storage/page_store.h"
#include "storage/snapshot.h"
#include "storage/tuple.h"

namespace dfdb {

/// \brief One committed version of a heap file: the page-id list and tuple
/// count visible to snapshots captured at or after \c commit_ts (until a
/// newer version supersedes it).
struct HeapFileVersion {
  uint64_t commit_ts = 0;
  std::vector<PageId> pages;
  uint64_t tuple_count = 0;
};

/// \brief Append-oriented tuple storage for one relation, with MVCC page
/// versions.
///
/// Tuples accumulate in an open page; when it fills it is sealed into the
/// PageStore and recorded. Delete is supported by rewriting affected pages
/// (fine at 1979 scale and for the paper's `delete` query-tree operator).
///
/// Versioning: mutations (Append*, DeleteWhere) act on a mutable working
/// head. Commit(ts) freezes the head as a new immutable version; ViewAt(ts)
/// resolves a snapshot timestamp to the newest version at or before it.
/// Sealed pages are immutable, so a version is just a page-id list —
/// DeleteWhere's compaction rewrite is the copy-on-write step, and pages of
/// the previous version that leave the head are *retired* (queued for
/// version GC) rather than freed, because older snapshots may still read
/// them. GcUpTo(min_live_ts) frees retired pages no live snapshot can see.
/// Uncommitted pages that never made it into a version are freed eagerly,
/// which preserves the historical storage footprint for files that never
/// commit (e.g. standalone use in tests).
class HeapFile {
 public:
  HeapFile(RelationId relation, Schema schema, int page_bytes,
           PageStore* store, MvccCounters* mvcc = nullptr);
  DFDB_DISALLOW_COPY(HeapFile);

  RelationId relation() const { return relation_; }
  const Schema& schema() const { return schema_; }
  int page_bytes() const { return page_bytes_; }

  /// Appends one row of Values.
  Status Append(const std::vector<Value>& values);

  /// Appends a pre-encoded tuple (must match the schema width).
  Status AppendEncoded(Slice tuple);

  /// Appends every tuple of \p page (the query-tree `append` operator).
  Status AppendPage(const Page& page);

  /// Seals the open page (if non-empty) so scans see all data.
  Status Flush();

  /// Ids of all sealed pages of the working head, in order.
  std::vector<PageId> PageIds() const;

  uint64_t tuple_count() const;
  uint64_t page_count() const;

  /// Removes tuples matching \p pred (exact byte equality against an
  /// encoded tuple is handled by the caller providing the predicate).
  /// Returns the number removed. Pages are rewritten compactly; replaced
  /// pages that belong to the committed version are retired for GC, the
  /// rest are freed immediately.
  StatusOr<uint64_t> DeleteWhere(
      const std::function<bool(const TupleView&)>& pred);

  // --- MVCC: committed versions, snapshot views, version GC ---

  /// True when the working head holds mutations not yet committed
  /// (including tuples buffered in the open page).
  bool dirty() const;

  /// Seals the open page and installs the working head as the committed
  /// version at \p commit_ts (must be monotone per file; the StorageEngine
  /// assigns timestamps from one clock). Pages of the previous version
  /// that left the head are retired at \p commit_ts. No-op when clean.
  Status Commit(uint64_t commit_ts);

  /// The newest committed version with commit_ts <= \p ts. Every file has
  /// an empty base version at ts 0, so this always resolves.
  HeapFileVersion ViewAt(uint64_t ts) const;

  /// Discards uncommitted head mutations: pages not in the committed
  /// version are freed and the head is restored to the newest version.
  Status RollbackToCommitted();

  /// Frees retired pages invisible to every snapshot at or after
  /// \p min_live_ts and prunes superseded version records. Returns the
  /// number of pages freed.
  uint64_t GcUpTo(uint64_t min_live_ts);

  /// Committed version records currently held (>= 1: the base version).
  uint64_t version_count() const;

  /// Timestamp of the newest committed version (0 = only the base).
  uint64_t last_commit_ts() const;

  /// Every page id referenced by the head, any committed version, or the
  /// retired-page list (used when dropping the relation).
  std::vector<PageId> AllPageIds() const;

  /// Zone maps of this file's sealed pages. Entries are keyed by PageId and
  /// sealed pages are immutable, so a map is valid for every MVCC version
  /// and snapshot that can still see its page; entries die when the page is
  /// freed (eager free, rollback, or version GC).
  const ZoneMapStore& zone_maps() const { return zone_maps_; }

 private:
  Status SealCurrentLocked();

  /// Seals \p page into the store, builds its zone map, and returns its id.
  /// The single choke point for both seal sites (open-page seal and
  /// DeleteWhere's CoW rewrite) so no sealed page can miss its map.
  PageId SealIntoStoreLocked(Page&& page);

  const RelationId relation_;
  const Schema schema_;
  const int page_bytes_;
  PageStore* store_;
  MvccCounters* mvcc_;  // Nullable (standalone files count nothing).

  mutable std::mutex mu_;
  std::vector<PageId> pages_;
  std::unique_ptr<Page> current_;
  uint64_t tuple_count_ = 0;

  /// Committed versions ordered by commit_ts; front is the oldest a live
  /// snapshot may still need, back is the newest.
  std::vector<HeapFileVersion> versions_;
  /// Pages of versions_.back() (set view, for commit diffs and rollback).
  std::set<PageId> committed_live_;
  /// Retired pages: (retire_ts, page). A page retired at commit T is
  /// visible to snapshots with ts < T and freeable once min_live_ts >= T.
  std::vector<std::pair<uint64_t, PageId>> garbage_;
  bool dirty_ = false;
  ZoneMapStore zone_maps_;
};

}  // namespace dfdb

#endif  // DFDB_STORAGE_HEAP_FILE_H_

#include "storage/heap_file.h"

#include <algorithm>

#include "common/logging.h"
#include "common/macros.h"

namespace dfdb {

HeapFile::HeapFile(RelationId relation, Schema schema, int page_bytes,
                   PageStore* store, MvccCounters* mvcc)
    : relation_(relation),
      schema_(std::move(schema)),
      page_bytes_(page_bytes),
      store_(store),
      mvcc_(mvcc) {
  DFDB_CHECK(store != nullptr);
  DFDB_CHECK(page_bytes_ >= schema_.tuple_width())
      << "page size " << page_bytes_ << " below tuple width "
      << schema_.tuple_width();
  // The base version: every snapshot resolves, even one captured before
  // the first commit.
  versions_.push_back(HeapFileVersion{0, {}, 0});
}

Status HeapFile::Append(const std::vector<Value>& values) {
  auto encoded = EncodeTuple(schema_, values);
  if (!encoded.ok()) return encoded.status();
  return AppendEncoded(Slice(*encoded));
}

Status HeapFile::AppendEncoded(Slice tuple) {
  std::lock_guard<std::mutex> lock(mu_);
  if (current_ == nullptr) {
    auto page = Page::Create(relation_, schema_.tuple_width(), page_bytes_);
    if (!page.ok()) return page.status();
    current_ = std::make_unique<Page>(*std::move(page));
  }
  DFDB_RETURN_IF_ERROR(current_->Append(tuple));
  ++tuple_count_;
  dirty_ = true;
  if (current_->full()) {
    DFDB_RETURN_IF_ERROR(SealCurrentLocked());
  }
  return Status::OK();
}

Status HeapFile::AppendPage(const Page& page) {
  if (page.tuple_width() != schema_.tuple_width()) {
    return Status::InvalidArgument("page tuple width does not match relation");
  }
  for (int i = 0; i < page.num_tuples(); ++i) {
    DFDB_RETURN_IF_ERROR(AppendEncoded(page.tuple(i)));
  }
  return Status::OK();
}

Status HeapFile::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (current_ != nullptr && !current_->empty()) {
    return SealCurrentLocked();
  }
  return Status::OK();
}

Status HeapFile::SealCurrentLocked() {
  pages_.push_back(SealIntoStoreLocked(std::move(*current_)));
  current_.reset();
  return Status::OK();
}

PageId HeapFile::SealIntoStoreLocked(Page&& page) {
  ZoneMapEntry entry = BuildZoneMap(schema_, page);
  PagePtr sealed = SealPage(std::move(page));
#ifdef DFDB_SANITIZE
  DFDB_CHECK(ZoneMapBrackets(entry, schema_, *sealed))
      << "zone map of freshly sealed page does not bracket its tuples "
         "(relation " << relation_ << ")";
#endif
  const PageId id = store_->Put(std::move(sealed));
  zone_maps_.Put(id, std::move(entry));
  return id;
}

std::vector<PageId> HeapFile::PageIds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pages_;
}

uint64_t HeapFile::tuple_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tuple_count_;
}

uint64_t HeapFile::page_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pages_.size() + ((current_ && !current_->empty()) ? 1 : 0);
}

StatusOr<uint64_t> HeapFile::DeleteWhere(
    const std::function<bool(const TupleView&)>& pred) {
  std::lock_guard<std::mutex> lock(mu_);
  if (current_ != nullptr && !current_->empty()) {
    DFDB_RETURN_IF_ERROR(SealCurrentLocked());
  }
  uint64_t removed = 0;
  std::vector<PageId> new_pages;
  std::unique_ptr<Page> out;
  auto flush_out = [&]() -> Status {
    if (out != nullptr && !out->empty()) {
      new_pages.push_back(SealIntoStoreLocked(std::move(*out)));
      if (mvcc_ != nullptr) {
        mvcc_->pages_copied.fetch_add(1, std::memory_order_relaxed);
      }
    }
    out.reset();
    return Status::OK();
  };
  for (PageId id : pages_) {
    auto page = store_->Get(id);
    if (!page.ok()) return page.status();
    for (int i = 0; i < (*page)->num_tuples(); ++i) {
      TupleView view(&schema_, (*page)->tuple(i));
      if (pred(view)) {
        ++removed;
        continue;
      }
      if (out == nullptr) {
        auto np = Page::Create(relation_, schema_.tuple_width(), page_bytes_);
        if (!np.ok()) return np.status();
        out = std::make_unique<Page>(*std::move(np));
      }
      DFDB_RETURN_IF_ERROR(out->Append((*page)->tuple(i)));
      if (out->full()) DFDB_RETURN_IF_ERROR(flush_out());
    }
    // Copy-on-write: a replaced page that belongs to the committed version
    // must stay readable for older snapshots — the commit diff retires it.
    // A page only the uncommitted head referenced is freed right away.
    if (committed_live_.count(id) == 0) {
      DFDB_RETURN_IF_ERROR(store_->Free(id));
      zone_maps_.Erase(id);
    }
  }
  DFDB_RETURN_IF_ERROR(flush_out());
  pages_ = std::move(new_pages);
  tuple_count_ -= removed;
  dirty_ = true;
  return removed;
}

bool HeapFile::dirty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dirty_;
}

Status HeapFile::Commit(uint64_t commit_ts) {
  std::lock_guard<std::mutex> lock(mu_);
  if (current_ != nullptr && !current_->empty()) {
    DFDB_RETURN_IF_ERROR(SealCurrentLocked());
  }
  if (!dirty_) return Status::OK();
  DFDB_CHECK(versions_.empty() || commit_ts > versions_.back().commit_ts)
      << "commit timestamps must be monotone per relation";
  // Committed pages that left the head (DeleteWhere compaction) retire at
  // this commit: snapshots below commit_ts may still read them.
  std::set<PageId> head(pages_.begin(), pages_.end());
  for (PageId id : committed_live_) {
    if (head.count(id) == 0) garbage_.emplace_back(commit_ts, id);
  }
  committed_live_ = std::move(head);
  versions_.push_back(HeapFileVersion{commit_ts, pages_, tuple_count_});
  dirty_ = false;
  if (mvcc_ != nullptr) mvcc_->commits.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

HeapFileVersion HeapFile::ViewAt(uint64_t ts) const {
  std::lock_guard<std::mutex> lock(mu_);
  // versions_ is ordered by commit_ts and starts at the ts-0 base version,
  // so the newest version at or before ts always exists.
  const HeapFileVersion* best = &versions_.front();
  for (const HeapFileVersion& v : versions_) {
    if (v.commit_ts > ts) break;
    best = &v;
  }
  return *best;
}

Status HeapFile::RollbackToCommitted() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!dirty_ && (current_ == nullptr || current_->empty())) {
    return Status::OK();
  }
  current_.reset();
  for (PageId id : pages_) {
    // Uncommitted pages die with the rollback; committed pages that the
    // aborted mutation dropped from the head were never freed, so
    // restoring the committed page list below resurrects them intact.
    if (committed_live_.count(id) == 0) {
      (void)store_->Free(id);
      zone_maps_.Erase(id);
    }
  }
  const HeapFileVersion& latest = versions_.back();
  pages_ = latest.pages;
  tuple_count_ = latest.tuple_count;
  dirty_ = false;
  return Status::OK();
}

uint64_t HeapFile::GcUpTo(uint64_t min_live_ts) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t freed = 0;
  std::vector<std::pair<uint64_t, PageId>> keep;
  keep.reserve(garbage_.size());
  for (const auto& [retire_ts, id] : garbage_) {
    // Retired at T => visible only to snapshots with ts < T. A snapshot at
    // exactly min_live_ts already reads the successor version, so
    // retire_ts <= min_live_ts is free-able.
    if (retire_ts <= min_live_ts) {
      if (store_->Free(id).ok()) ++freed;
      zone_maps_.Erase(id);
    } else {
      keep.emplace_back(retire_ts, id);
    }
  }
  garbage_ = std::move(keep);
  // Prune version records no snapshot can resolve to any more: keep the
  // newest version at or before min_live_ts plus everything after it.
  size_t keep_from = 0;
  for (size_t i = 0; i < versions_.size(); ++i) {
    if (versions_[i].commit_ts > min_live_ts) break;
    keep_from = i;
  }
  if (keep_from > 0) {
    versions_.erase(versions_.begin(),
                    versions_.begin() + static_cast<long>(keep_from));
  }
  if (freed > 0 && mvcc_ != nullptr) {
    mvcc_->gc_reclaimed.fetch_add(freed, std::memory_order_relaxed);
  }
  return freed;
}

uint64_t HeapFile::version_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return versions_.size();
}

uint64_t HeapFile::last_commit_ts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return versions_.back().commit_ts;
}

std::vector<PageId> HeapFile::AllPageIds() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::set<PageId> all(pages_.begin(), pages_.end());
  for (const HeapFileVersion& v : versions_) {
    all.insert(v.pages.begin(), v.pages.end());
  }
  for (const auto& [retire_ts, id] : garbage_) all.insert(id);
  return std::vector<PageId>(all.begin(), all.end());
}

}  // namespace dfdb

#include "storage/heap_file.h"

#include "common/logging.h"
#include "common/macros.h"

namespace dfdb {

HeapFile::HeapFile(RelationId relation, Schema schema, int page_bytes,
                   PageStore* store)
    : relation_(relation),
      schema_(std::move(schema)),
      page_bytes_(page_bytes),
      store_(store) {
  DFDB_CHECK(store != nullptr);
  DFDB_CHECK(page_bytes_ >= schema_.tuple_width())
      << "page size " << page_bytes_ << " below tuple width "
      << schema_.tuple_width();
}

Status HeapFile::Append(const std::vector<Value>& values) {
  auto encoded = EncodeTuple(schema_, values);
  if (!encoded.ok()) return encoded.status();
  return AppendEncoded(Slice(*encoded));
}

Status HeapFile::AppendEncoded(Slice tuple) {
  std::lock_guard<std::mutex> lock(mu_);
  if (current_ == nullptr) {
    auto page = Page::Create(relation_, schema_.tuple_width(), page_bytes_);
    if (!page.ok()) return page.status();
    current_ = std::make_unique<Page>(*std::move(page));
  }
  DFDB_RETURN_IF_ERROR(current_->Append(tuple));
  ++tuple_count_;
  if (current_->full()) {
    DFDB_RETURN_IF_ERROR(SealCurrentLocked());
  }
  return Status::OK();
}

Status HeapFile::AppendPage(const Page& page) {
  if (page.tuple_width() != schema_.tuple_width()) {
    return Status::InvalidArgument("page tuple width does not match relation");
  }
  for (int i = 0; i < page.num_tuples(); ++i) {
    DFDB_RETURN_IF_ERROR(AppendEncoded(page.tuple(i)));
  }
  return Status::OK();
}

Status HeapFile::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (current_ != nullptr && !current_->empty()) {
    return SealCurrentLocked();
  }
  return Status::OK();
}

Status HeapFile::SealCurrentLocked() {
  pages_.push_back(store_->Put(SealPage(std::move(*current_))));
  current_.reset();
  return Status::OK();
}

std::vector<PageId> HeapFile::PageIds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pages_;
}

uint64_t HeapFile::tuple_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tuple_count_;
}

uint64_t HeapFile::page_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pages_.size() + ((current_ && !current_->empty()) ? 1 : 0);
}

StatusOr<uint64_t> HeapFile::DeleteWhere(
    const std::function<bool(const TupleView&)>& pred) {
  std::lock_guard<std::mutex> lock(mu_);
  if (current_ != nullptr && !current_->empty()) {
    DFDB_RETURN_IF_ERROR(SealCurrentLocked());
  }
  uint64_t removed = 0;
  std::vector<PageId> new_pages;
  std::unique_ptr<Page> out;
  auto flush_out = [&]() -> Status {
    if (out != nullptr && !out->empty()) {
      new_pages.push_back(store_->Put(SealPage(std::move(*out))));
    }
    out.reset();
    return Status::OK();
  };
  for (PageId id : pages_) {
    auto page = store_->Get(id);
    if (!page.ok()) return page.status();
    for (int i = 0; i < (*page)->num_tuples(); ++i) {
      TupleView view(&schema_, (*page)->tuple(i));
      if (pred(view)) {
        ++removed;
        continue;
      }
      if (out == nullptr) {
        auto np = Page::Create(relation_, schema_.tuple_width(), page_bytes_);
        if (!np.ok()) return np.status();
        out = std::make_unique<Page>(*std::move(np));
      }
      DFDB_RETURN_IF_ERROR(out->Append((*page)->tuple(i)));
      if (out->full()) DFDB_RETURN_IF_ERROR(flush_out());
    }
    DFDB_RETURN_IF_ERROR(store_->Free(id));
  }
  DFDB_RETURN_IF_ERROR(flush_out());
  pages_ = std::move(new_pages);
  tuple_count_ -= removed;
  return removed;
}

}  // namespace dfdb

#include "storage/pushdown.h"

#include <string>

#include "obs/metrics.h"

namespace dfdb {

void RegisterPushdownMetrics(const PushdownCounters& counters,
                             const char* prefix,
                             obs::MetricsRegistry* registry) {
  const std::string p(prefix);
  registry->Set(p + "pages_filtered", counters.pages_filtered);
  registry->Set(p + "tuples_in", counters.tuples_in);
  registry->Set(p + "tuples_out", counters.tuples_out);
  registry->Set(p + "bytes_elided", counters.bytes_elided);
  registry->Set(p + "fallbacks", counters.fallbacks);
}

}  // namespace dfdb

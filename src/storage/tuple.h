/// \file tuple.h
/// \brief Encoding and decoding of fixed-width tuples.

#ifndef DFDB_STORAGE_TUPLE_H_
#define DFDB_STORAGE_TUPLE_H_

#include <string>
#include <vector>

#include "catalog/schema.h"
#include "catalog/types.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/statusor.h"

namespace dfdb {

/// \brief Encodes a row of Values into the fixed-width layout of \p schema.
///
/// CHAR values shorter than the column width are blank-padded; longer values
/// are an InvalidArgument error. Numeric values must match the column type
/// exactly (no silent narrowing).
StatusOr<std::string> EncodeTuple(const Schema& schema,
                                  const std::vector<Value>& values);

/// \brief Zero-copy reader over one encoded tuple.
///
/// The underlying bytes (typically inside a Page) must outlive the view.
class TupleView {
 public:
  /// \p data must be exactly schema.tuple_width() bytes (checked lazily by
  /// Validate()).
  TupleView(const Schema* schema, Slice data) : schema_(schema), data_(data) {}

  const Schema& schema() const { return *schema_; }
  Slice raw() const { return data_; }

  /// InvalidArgument if the byte length does not match the schema.
  Status Validate() const;

  /// Decodes column \p col into a Value. CHAR values keep their padding
  /// trimmed from the right.
  StatusOr<Value> GetValue(int col) const;

  /// Borrowed bytes of column \p col (CHAR padding included).
  Slice GetRaw(int col) const;

  /// Compares column \p col of this tuple against the same-typed \p other
  /// column of another tuple, without materializing Values.
  StatusOr<int> CompareColumn(int col, const TupleView& other,
                              int other_col) const;

  /// Renders "(v1, v2, ...)" for debugging.
  std::string ToString() const;

 private:
  const Schema* schema_;
  Slice data_;
};

/// \brief Length of a CHAR column's value after right-trimming the blank
/// padding — the string GetValue() materializes. Shared by the compiled
/// predicate programs and the hash-join key logic so both agree with the
/// interpreter byte for byte.
inline size_t TrimmedCharLen(const char* p, int width) {
  size_t n = static_cast<size_t>(width);
  while (n > 0 && p[n - 1] == ' ') --n;
  return n;
}

/// \brief Concatenates two encoded tuples (join output: outer ++ inner).
std::string ConcatTuples(Slice left, Slice right);

/// \brief Copies selected columns of \p src (described by \p schema) in
/// \p indices order into a new encoded tuple for the projected schema.
std::string ProjectTuple(const Schema& schema, Slice src,
                         const std::vector<int>& indices);

/// \brief ProjectTuple into a caller-owned buffer, so loops that project
/// per tuple (duplicate elimination) can reuse one allocation.
void ProjectTupleInto(const Schema& schema, Slice src,
                      const std::vector<int>& indices, std::string* out);

}  // namespace dfdb

#endif  // DFDB_STORAGE_TUPLE_H_

/// \file storage_engine.h
/// \brief Facade tying the catalog, page store, and heap files together.

#ifndef DFDB_STORAGE_STORAGE_ENGINE_H_
#define DFDB_STORAGE_STORAGE_ENGINE_H_

#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>

#include "catalog/catalog.h"
#include "common/macros.h"
#include "storage/heap_file.h"
#include "storage/page_store.h"
#include "storage/relation_ref.h"
#include "storage/snapshot.h"

namespace dfdb {

/// \brief Options for StorageEngine::CreateRelation.
struct CreateRelationOptions {
  /// Page size for the relation's heap file; 0 uses the engine default.
  int page_bytes = 0;
};

/// \brief Extension slot for the index subsystem (src/index): built
/// secondary-index structures whose lifetime the storage engine anchors
/// without dfdb_storage linking against the higher index library. The
/// concrete implementation (IndexManager) installs itself via
/// StorageEngine::GetOrCreateIndexCache().
class RelationIndexCache {
 public:
  virtual ~RelationIndexCache() = default;

  /// Invalidation hook: the relation's pages are gone, drop anything built
  /// over them.
  virtual void OnRelationDropped(RelationId id) = 0;
};

/// \brief The database substrate the engines execute against: one catalog,
/// one mass-storage page store, one heap file per relation — plus the MVCC
/// commit clock and snapshot registry.
///
/// Two read paths exist by design: CaptureSnapshot() hands out immutable
/// point-in-time views (what concurrent queries scan), while GetHeapFile()
/// remains the borrowed *writer* path — mutations act on the working head
/// and become visible to new snapshots when CommitRelation()/SyncStats()
/// installs a version under the engine's monotone commit clock.
class StorageEngine {
 public:
  /// \p default_page_bytes is the page size for newly created relations
  /// (the paper's experiments use 16 KB operand pages; Section 3.3 reasons
  /// about 1 KB and 10 KB pages).
  explicit StorageEngine(int default_page_bytes = 16384);
  DFDB_DISALLOW_COPY(StorageEngine);

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }
  PageStore& page_store() { return store_; }
  const PageStore& page_store() const { return store_; }
  int default_page_bytes() const { return default_page_bytes_; }

  /// Creates relation + heap file; returns the new id.
  StatusOr<RelationId> CreateRelation(std::string name, Schema schema,
                                      CreateRelationOptions opts = {});

  /// Drops the relation, freeing every page of every version. Dropping a
  /// relation out from under an open snapshot fails that snapshot's later
  /// View() calls (same contract the borrowed HeapFile pointer always had).
  Status DropRelation(std::string_view name);

  /// Borrowed mutable pointer (the writer path); valid until the relation
  /// is dropped. Readers under concurrency should use CaptureSnapshot().
  StatusOr<HeapFile*> GetHeapFile(RelationRef rel);

  /// Commits the heap file (if dirty) and refreshes catalog statistics.
  Status SyncStats(RelationRef rel);

  /// Commits and refreshes statistics for every relation.
  Status SyncAllStats();

  // --- MVCC: commit clock, snapshots, version GC ---

  /// Captures an immutable view at the current commit timestamp. Uncommitted
  /// working-head mutations are *not* visible; call CommitRelation() first
  /// to publish them.
  Snapshot CaptureSnapshot();

  /// Installs the relation's working head as a new committed version under
  /// the next commit timestamp (no-op when clean), then garbage-collects
  /// versions no live snapshot can see.
  Status CommitRelation(RelationRef rel);

  /// Discards the relation's uncommitted head mutations (failed writer).
  Status RollbackRelation(RelationRef rel);

  /// Current commit clock (timestamp of the newest commit; 0 initially).
  uint64_t last_commit_ts() const;

  /// Storage-wide MVCC counters (the engine.mvcc.* family).
  MvccStats mvcc_stats() const;

  /// Returns the installed index cache, creating it with \p factory on
  /// first use (install-once; later calls ignore \p factory). The returned
  /// pointer is stable for the engine's lifetime.
  RelationIndexCache* GetOrCreateIndexCache(
      const std::function<std::unique_ptr<RelationIndexCache>()>& factory);

  /// The installed index cache, or null when no index was ever created.
  RelationIndexCache* index_cache() const;

 private:
  friend class Snapshot;
  friend struct Snapshot::State;

  /// Resolves the newest version of \p rel visible at \p ts.
  StatusOr<SnapshotView> ViewAtSnapshot(RelationRef rel, uint64_t ts);

  /// Drops one open-snapshot registration and GCs newly dead versions.
  void ReleaseSnapshot(uint64_t ts);

  /// Frees retired pages invisible at \p min_live_ts across every file.
  void GcAllFiles(uint64_t min_live_ts);

  /// min over open snapshots, or the commit clock when none are open.
  uint64_t MinLiveSnapshotLocked() const;

  const int default_page_bytes_;
  Catalog catalog_;
  PageStore store_;
  mutable std::mutex mu_;
  std::unordered_map<RelationId, std::unique_ptr<HeapFile>> files_;

  /// Guards the commit clock and the open-snapshot registry. Commits
  /// happen under this mutex so a concurrent capture sees either the old
  /// clock (and keeps reading the old version) or the new clock with the
  /// new version already installed — never a timestamp whose version is
  /// still in flight.
  mutable std::mutex snap_mu_;
  uint64_t last_commit_ts_ = 0;
  std::multiset<uint64_t> open_snapshots_;
  uint64_t snapshots_captured_ = 0;
  MvccCounters mvcc_;

  mutable std::mutex index_cache_mu_;
  std::unique_ptr<RelationIndexCache> index_cache_;
};

}  // namespace dfdb

#endif  // DFDB_STORAGE_STORAGE_ENGINE_H_

/// \file storage_engine.h
/// \brief Facade tying the catalog, page store, and heap files together.

#ifndef DFDB_STORAGE_STORAGE_ENGINE_H_
#define DFDB_STORAGE_STORAGE_ENGINE_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "catalog/catalog.h"
#include "common/macros.h"
#include "storage/heap_file.h"
#include "storage/page_store.h"

namespace dfdb {

/// \brief The database substrate the engines execute against: one catalog,
/// one mass-storage page store, one heap file per relation.
class StorageEngine {
 public:
  /// \p default_page_bytes is the page size for newly created relations
  /// (the paper's experiments use 16 KB operand pages; Section 3.3 reasons
  /// about 1 KB and 10 KB pages).
  explicit StorageEngine(int default_page_bytes = 16384);
  DFDB_DISALLOW_COPY(StorageEngine);

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }
  PageStore& page_store() { return store_; }
  const PageStore& page_store() const { return store_; }
  int default_page_bytes() const { return default_page_bytes_; }

  /// Creates relation + heap file; returns the new id.
  StatusOr<RelationId> CreateRelation(std::string name, Schema schema);
  StatusOr<RelationId> CreateRelation(std::string name, Schema schema,
                                      int page_bytes);

  /// Drops the relation, freeing its pages.
  Status DropRelation(std::string_view name);

  /// Borrowed pointer; valid until the relation is dropped.
  StatusOr<HeapFile*> GetHeapFile(RelationId id);
  StatusOr<HeapFile*> GetHeapFile(std::string_view name);

  /// Flushes the heap file and refreshes catalog statistics.
  Status SyncStats(RelationId id);

  /// Flushes and refreshes statistics for every relation.
  Status SyncAllStats();

 private:
  const int default_page_bytes_;
  Catalog catalog_;
  PageStore store_;
  mutable std::mutex mu_;
  std::unordered_map<RelationId, std::unique_ptr<HeapFile>> files_;
};

}  // namespace dfdb

#endif  // DFDB_STORAGE_STORAGE_ENGINE_H_

#include "storage/page_table.h"

namespace dfdb {

Status PageTable::Append(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (complete_) {
    return Status::FailedPrecondition("page table already marked complete");
  }
  ids_.push_back(id);
  return Status::OK();
}

void PageTable::MarkComplete() {
  std::lock_guard<std::mutex> lock(mu_);
  complete_ = true;
}

bool PageTable::complete() const {
  std::lock_guard<std::mutex> lock(mu_);
  return complete_;
}

size_t PageTable::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ids_.size();
}

std::optional<PageId> PageTable::At(size_t index) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (index >= ids_.size()) return std::nullopt;
  return ids_[index];
}

std::vector<PageId> PageTable::Ids() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ids_;
}

bool PageTable::Exhausted(size_t consumed) const {
  std::lock_guard<std::mutex> lock(mu_);
  return complete_ && consumed >= ids_.size();
}

}  // namespace dfdb

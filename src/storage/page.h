/// \file page.h
/// \brief Fixed-size pages of fixed-width tuples.
///
/// A page is the paper's unit of data-flow scheduling: "a page of a relation
/// (containing a set of tuples) is used for scheduling decisions"
/// (Section 3.2). Tuples are fixed width (see catalog/types.h), so a page is
/// a small header plus a packed tuple array.

#ifndef DFDB_STORAGE_PAGE_H_
#define DFDB_STORAGE_PAGE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/statusor.h"

namespace dfdb {

/// Globally unique page identifier (monotonic, assigned by PageStore).
using PageId = uint64_t;
constexpr PageId kInvalidPageId = 0;

/// \brief A page: header plus packed fixed-width tuples.
///
/// Pages are immutable once sealed; the engine shares them between operators
/// via shared_ptr<const Page>. `capacity_bytes` is the payload budget — the
/// paper's "page size" (1,000 / 10,000 / 16 K bytes in its examples).
class Page {
 public:
  /// Creates an empty page for tuples of \p tuple_width bytes.
  /// InvalidArgument if the page cannot hold even one tuple.
  static StatusOr<Page> Create(RelationId relation, int tuple_width,
                               int capacity_bytes);

  RelationId relation() const { return relation_; }
  void set_relation(RelationId r) { relation_ = r; }

  int tuple_width() const { return tuple_width_; }
  int capacity_bytes() const { return capacity_bytes_; }

  /// Maximum number of tuples this page can hold.
  int capacity_tuples() const { return capacity_bytes_ / tuple_width_; }
  int num_tuples() const { return num_tuples_; }
  bool empty() const { return num_tuples_ == 0; }
  bool full() const { return num_tuples_ >= capacity_tuples(); }

  /// Bytes of tuple payload currently stored.
  int payload_bytes() const { return num_tuples_ * tuple_width_; }

  /// Appends one encoded tuple (must be exactly tuple_width() bytes).
  /// ResourceExhausted when full.
  Status Append(Slice tuple);

  /// Appends one tuple given as \p n byte ranges whose sizes must sum to
  /// tuple_width(). The kernels' scatter/gather emission path: join and
  /// project outputs are assembled directly into the page, with no
  /// intermediate tuple buffer.
  Status AppendParts(const Slice* parts, size_t n);

  /// Borrowed view of tuple \p i; valid while the page is alive.
  Slice tuple(int i) const {
    return Slice(data_.data() + static_cast<size_t>(i) * tuple_width_,
                 static_cast<size_t>(tuple_width_));
  }

  /// Copies all tuples of \p other that fit; returns how many were copied.
  /// Used by instruction controllers to "compress partial pages into full
  /// pages" (Section 4.2). Tuple widths must match.
  StatusOr<int> FillFrom(const Page& other, int from_tuple);

  /// Serializes header + payload (for packet round-trip and persistence
  /// tests).
  std::string Serialize() const;

  /// Inverse of Serialize(); Corruption on malformed input.
  static StatusOr<Page> Deserialize(Slice bytes);

 private:
  Page(RelationId relation, int tuple_width, int capacity_bytes)
      : relation_(relation),
        tuple_width_(tuple_width),
        capacity_bytes_(capacity_bytes) {
    data_.reserve(static_cast<size_t>(capacity_bytes));
  }

  RelationId relation_;
  int tuple_width_;
  int capacity_bytes_;
  int num_tuples_ = 0;
  std::vector<char> data_;
};

using PagePtr = std::shared_ptr<const Page>;

/// Convenience: wraps a finished page for sharing.
inline PagePtr SealPage(Page&& page) {
  return std::make_shared<const Page>(std::move(page));
}

}  // namespace dfdb

#endif  // DFDB_STORAGE_PAGE_H_

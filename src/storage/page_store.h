/// \file page_store.h
/// \brief Page persistence: the simulated mass-storage level.
///
/// The paper's machine keeps relations on IBM 3330 disk drives. We simulate
/// mass storage as an in-memory PageId -> Page map with byte-level traffic
/// accounting; the timing cost of the devices is modelled separately (see
/// device_model.h) so the same store backs both the real multithreaded
/// engine and the discrete-event machine simulator.

#ifndef DFDB_STORAGE_PAGE_STORE_H_
#define DFDB_STORAGE_PAGE_STORE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "common/macros.h"
#include "storage/page.h"

namespace dfdb {

/// \brief Cumulative I/O statistics of a PageStore.
struct PageStoreStats {
  uint64_t pages_written = 0;
  uint64_t pages_read = 0;
  uint64_t bytes_written = 0;
  uint64_t bytes_read = 0;
};

/// \brief Thread-safe in-memory page repository with unique id assignment.
class PageStore {
 public:
  PageStore() = default;
  DFDB_DISALLOW_COPY(PageStore);

  /// Stores \p page and returns its new id.
  PageId Put(PagePtr page);

  /// Fetches a page; NotFound if the id was never stored or was freed.
  StatusOr<PagePtr> Get(PageId id) const;

  /// Releases a page (intermediate results are freed once consumed).
  Status Free(PageId id);

  /// Number of live pages.
  size_t size() const;

  /// Total payload bytes across live pages.
  int64_t TotalPayloadBytes() const;

  PageStoreStats stats() const;
  void ResetStats();

 private:
  mutable std::mutex mu_;
  std::unordered_map<PageId, PagePtr> pages_;
  PageId next_id_ = 1;
  // Read counters advance inside const Get(); statistics are not part of
  // the store's logical state.
  mutable PageStoreStats stats_;
};

}  // namespace dfdb

#endif  // DFDB_STORAGE_PAGE_STORE_H_

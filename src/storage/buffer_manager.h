/// \file buffer_manager.h
/// \brief The three-level storage hierarchy of Section 4.1.
///
/// "Thus, the IC local memory, the disk cache, and the mass storage devices
/// form a three-level storage hierarchy." The BufferManager tracks page
/// *residency* in the two upper levels (the PageStore is the always-valid
/// mass-storage level) and accounts for every byte that crosses a level
/// boundary. Those byte counters are what Figure 4.2 plots.

#ifndef DFDB_STORAGE_BUFFER_MANAGER_H_
#define DFDB_STORAGE_BUFFER_MANAGER_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/macros.h"
#include "storage/page_store.h"
#include "storage/pushdown.h"

namespace dfdb {

namespace obs {
class MetricsRegistry;
}  // namespace obs

/// \brief Byte and operation counters across the hierarchy boundaries.
struct BufferStats {
  /// Mass storage <-> disk cache.
  uint64_t disk_read_bytes = 0;
  uint64_t disk_write_bytes = 0;
  uint64_t disk_reads = 0;
  uint64_t disk_writes = 0;
  /// Disk cache <-> local memory.
  uint64_t cache_read_bytes = 0;
  uint64_t cache_write_bytes = 0;
  uint64_t cache_reads = 0;
  uint64_t cache_writes = 0;
  /// Requests satisfied without any transfer.
  uint64_t local_hits = 0;

  uint64_t total_transferred_bytes() const {
    return disk_read_bytes + disk_write_bytes + cache_read_bytes +
           cache_write_bytes;
  }

  std::string ToString() const;
};

/// Registers every BufferStats counter into \p registry under the
/// observability naming scheme: `storage.disk_read_bytes`,
/// `storage.cache_reads`, ... (`local_hits` is exported as
/// `storage.cache_hits`: a request satisfied at the top of the hierarchy).
void RegisterMetrics(const BufferStats& stats, obs::MetricsRegistry* registry);

/// \brief LRU-managed two-level cache over a PageStore.
///
/// Level 0 ("local memory") and level 1 ("disk cache") have fixed capacities
/// in pages. A fetch promotes the page to level 0; eviction cascades
/// 0 -> 1 -> gone (mass storage always holds the bytes). Newly produced
/// pages enter at level 0 (they were just materialized by a processor).
class BufferManager {
 public:
  /// \p local_capacity_pages and \p cache_capacity_pages must be >= 1.
  BufferManager(PageStore* store, int local_capacity_pages,
                int cache_capacity_pages);
  DFDB_DISALLOW_COPY(BufferManager);

  /// Fetches a page through the hierarchy, counting transfers.
  StatusOr<PagePtr> Fetch(PageId id);

  /// Near-data read: applies \p filter to every tuple of the page *at the
  /// level where it resides* and emits only survivors into \p sink, so the
  /// cache -> local transfer is charged for surviving bytes only (the scan
  /// itself stays inside the device). The page is not promoted to local
  /// memory — survivors, not the raw page, move up the hierarchy; a page
  /// absent from both levels streams disk -> cache in full (the drive
  /// cannot filter) and then filters at the cache. Counters are charged to
  /// \p counters when non-null.
  Status ReadFiltered(PageId id, const PushdownFilter& filter,
                      PushdownSink* sink, PushdownCounters* counters);

  /// Registers a freshly produced page: stores it in mass storage's map
  /// (logical home), makes it resident in local memory, and returns its id.
  /// No transfer is counted until it is evicted or re-fetched.
  PageId PutNew(PagePtr page);

  /// Drops residency everywhere and frees the page from the store.
  Status Discard(PageId id);

  /// Evicts everything from both levels (counting writebacks), e.g. between
  /// benchmark phases.
  void FlushAll();

  BufferStats stats() const;
  void ResetStats();

  int local_resident_pages() const;
  int cache_resident_pages() const;

 private:
  enum class Level { kLocal, kCache, kNone };

  struct Entry {
    Level level;
    int bytes;
    std::list<PageId>::iterator lru_it;
  };

  // All private helpers require mu_ held.
  void TouchLocked(PageId id, Entry* entry);
  void InsertLocalLocked(PageId id, int bytes);
  void InsertCacheLocked(PageId id, int bytes);
  void EvictFromLocalLocked();
  void EvictFromCacheLocked();
  Level FindLocked(PageId id) const;

  PageStore* store_;
  const int local_capacity_;
  const int cache_capacity_;

  mutable std::mutex mu_;
  std::unordered_map<PageId, Entry> entries_;
  std::list<PageId> local_lru_;  // Front = most recent.
  std::list<PageId> cache_lru_;
  BufferStats stats_;
};

}  // namespace dfdb

#endif  // DFDB_STORAGE_BUFFER_MANAGER_H_

#include "storage/buffer_manager.h"

#include <vector>

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace dfdb {

std::string BufferStats::ToString() const {
  return StrFormat(
      "disk r/w: %s / %s, cache r/w: %s / %s, local hits: %llu",
      HumanBytes(static_cast<int64_t>(disk_read_bytes)).c_str(),
      HumanBytes(static_cast<int64_t>(disk_write_bytes)).c_str(),
      HumanBytes(static_cast<int64_t>(cache_read_bytes)).c_str(),
      HumanBytes(static_cast<int64_t>(cache_write_bytes)).c_str(),
      static_cast<unsigned long long>(local_hits));
}

void RegisterMetrics(const BufferStats& stats, obs::MetricsRegistry* registry) {
  registry->Set("storage.disk_read_bytes", stats.disk_read_bytes);
  registry->Set("storage.disk_write_bytes", stats.disk_write_bytes);
  registry->Set("storage.disk_reads", stats.disk_reads);
  registry->Set("storage.disk_writes", stats.disk_writes);
  registry->Set("storage.cache_read_bytes", stats.cache_read_bytes);
  registry->Set("storage.cache_write_bytes", stats.cache_write_bytes);
  registry->Set("storage.cache_reads", stats.cache_reads);
  registry->Set("storage.cache_writes", stats.cache_writes);
  registry->Set("storage.cache_hits", stats.local_hits);
}

BufferManager::BufferManager(PageStore* store, int local_capacity_pages,
                             int cache_capacity_pages)
    : store_(store),
      local_capacity_(local_capacity_pages),
      cache_capacity_(cache_capacity_pages) {
  DFDB_CHECK(store != nullptr);
  DFDB_CHECK(local_capacity_pages >= 1);
  DFDB_CHECK(cache_capacity_pages >= 1);
}

StatusOr<PagePtr> BufferManager::Fetch(PageId id) {
  auto page = store_->Get(id);
  if (!page.ok()) return page.status();
  const int bytes = (*page)->payload_bytes();

  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  if (it != entries_.end() && it->second.level == Level::kLocal) {
    stats_.local_hits++;
    // Refresh LRU position.
    local_lru_.erase(it->second.lru_it);
    local_lru_.push_front(id);
    it->second.lru_it = local_lru_.begin();
    return *page;
  }
  if (it != entries_.end() && it->second.level == Level::kCache) {
    // Cache hit: transfer cache -> local.
    stats_.cache_reads++;
    stats_.cache_read_bytes += static_cast<uint64_t>(bytes);
    cache_lru_.erase(it->second.lru_it);
    entries_.erase(it);
    InsertLocalLocked(id, bytes);
    return *page;
  }
  // Miss: disk -> cache -> local. The cache residency is transient (the
  // page streams through), so we charge disk->cache and cache->local and
  // land it in local memory.
  stats_.disk_reads++;
  stats_.disk_read_bytes += static_cast<uint64_t>(bytes);
  stats_.cache_reads++;
  stats_.cache_read_bytes += static_cast<uint64_t>(bytes);
  InsertLocalLocked(id, bytes);
  return *page;
}

Status BufferManager::ReadFiltered(PageId id, const PushdownFilter& filter,
                                   PushdownSink* sink,
                                   PushdownCounters* counters) {
  auto page = store_->Get(id);
  if (!page.ok()) return page.status();
  const int bytes = (*page)->payload_bytes();
  const int width = (*page)->tuple_width();
  const int n = (*page)->num_tuples();

  // Run the compiled program against the raw page before touching residency
  // state: the scan happens inside the device, outside the manager's lock.
  std::vector<int> survivors;
  survivors.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    if (filter.Matches((*page)->tuple(i).data())) survivors.push_back(i);
  }
  const uint64_t surviving_bytes =
      static_cast<uint64_t>(survivors.size()) * static_cast<uint64_t>(width);

  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(id);
    if (it != entries_.end() && it->second.level == Level::kLocal) {
      // Already in local memory: nothing to elide, the filter just saves
      // the consumer a pass. Refresh LRU like a plain fetch.
      stats_.local_hits++;
      local_lru_.erase(it->second.lru_it);
      local_lru_.push_front(id);
      it->second.lru_it = local_lru_.begin();
    } else if (it != entries_.end() && it->second.level == Level::kCache) {
      // Filter at the cache: only survivors occupy the port. The raw page
      // stays cache-resident — survivors, not the page, move up.
      stats_.cache_reads++;
      stats_.cache_read_bytes += surviving_bytes;
      cache_lru_.erase(it->second.lru_it);
      cache_lru_.push_front(id);
      it->second.lru_it = cache_lru_.begin();
      if (counters != nullptr) {
        counters->bytes_elided += static_cast<uint64_t>(bytes) - surviving_bytes;
      }
    } else {
      // Absent: the drive cannot filter, so the raw page streams into the
      // cache in full and the program runs there.
      stats_.disk_reads++;
      stats_.disk_read_bytes += static_cast<uint64_t>(bytes);
      stats_.cache_reads++;
      stats_.cache_read_bytes += surviving_bytes;
      InsertCacheLocked(id, bytes);
      if (counters != nullptr) {
        counters->bytes_elided += static_cast<uint64_t>(bytes) - surviving_bytes;
      }
    }
    if (counters != nullptr) {
      counters->pages_filtered++;
      counters->tuples_in += static_cast<uint64_t>(n);
      counters->tuples_out += static_cast<uint64_t>(survivors.size());
    }
  }

  for (int i : survivors) {
    Status s = sink->Emit((*page)->tuple(i));
    if (!s.ok()) return s;
  }
  return Status::OK();
}

PageId BufferManager::PutNew(PagePtr page) {
  const int bytes = page->payload_bytes();
  const PageId id = store_->Put(std::move(page));
  std::lock_guard<std::mutex> lock(mu_);
  InsertLocalLocked(id, bytes);
  return id;
}

Status BufferManager::Discard(PageId id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(id);
    if (it != entries_.end()) {
      if (it->second.level == Level::kLocal) {
        local_lru_.erase(it->second.lru_it);
      } else if (it->second.level == Level::kCache) {
        cache_lru_.erase(it->second.lru_it);
      }
      entries_.erase(it);
    }
  }
  return store_->Free(id);
}

void BufferManager::FlushAll() {
  std::lock_guard<std::mutex> lock(mu_);
  while (!local_lru_.empty()) EvictFromLocalLocked();
  while (!cache_lru_.empty()) EvictFromCacheLocked();
}

BufferStats BufferManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void BufferManager::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = BufferStats{};
}

int BufferManager::local_resident_pages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(local_lru_.size());
}

int BufferManager::cache_resident_pages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(cache_lru_.size());
}

void BufferManager::InsertLocalLocked(PageId id, int bytes) {
  while (static_cast<int>(local_lru_.size()) >= local_capacity_) {
    EvictFromLocalLocked();
  }
  local_lru_.push_front(id);
  entries_[id] = Entry{Level::kLocal, bytes, local_lru_.begin()};
}

void BufferManager::InsertCacheLocked(PageId id, int bytes) {
  while (static_cast<int>(cache_lru_.size()) >= cache_capacity_) {
    EvictFromCacheLocked();
  }
  cache_lru_.push_front(id);
  entries_[id] = Entry{Level::kCache, bytes, cache_lru_.begin()};
}

void BufferManager::EvictFromLocalLocked() {
  if (local_lru_.empty()) return;
  const PageId victim = local_lru_.back();
  local_lru_.pop_back();
  auto it = entries_.find(victim);
  DFDB_CHECK(it != entries_.end());
  const int bytes = it->second.bytes;
  // Writeback local -> cache ("the IC will write the least desirable pages
  // to its segment of the multiport disk cache", Section 4.1).
  stats_.cache_writes++;
  stats_.cache_write_bytes += static_cast<uint64_t>(bytes);
  while (static_cast<int>(cache_lru_.size()) >= cache_capacity_) {
    EvictFromCacheLocked();
  }
  cache_lru_.push_front(victim);
  it->second.level = Level::kCache;
  it->second.lru_it = cache_lru_.begin();
}

void BufferManager::EvictFromCacheLocked() {
  if (cache_lru_.empty()) return;
  const PageId victim = cache_lru_.back();
  cache_lru_.pop_back();
  auto it = entries_.find(victim);
  DFDB_CHECK(it != entries_.end());
  // Writeback cache -> disk ("when an IC fills its segment of the disk
  // cache, pages will be swapped out to disk").
  stats_.disk_writes++;
  stats_.disk_write_bytes += static_cast<uint64_t>(it->second.bytes);
  entries_.erase(it);
}

}  // namespace dfdb

/// \file page_table.h
/// \brief Page tables: a relation as an (open-ended) sequence of pages.
///
/// "We assume that ... the data is represented by page tables, pointing to
/// pages either in a cache or on mass storage. Thus a relation can also be
/// thought of as a stream of pages." (Section 2.3.) A PageTable is that
/// stream: an ordered list of PageIds plus a completeness mark set when the
/// producing operator finishes.

#ifndef DFDB_STORAGE_PAGE_TABLE_H_
#define DFDB_STORAGE_PAGE_TABLE_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "common/macros.h"
#include "storage/page.h"

namespace dfdb {

/// \brief Thread-safe ordered list of page ids with an end-of-stream mark.
class PageTable {
 public:
  PageTable() = default;
  DFDB_DISALLOW_COPY(PageTable);

  /// Appends a produced page. FailedPrecondition after MarkComplete().
  Status Append(PageId id);

  /// Declares that no further pages will arrive.
  void MarkComplete();

  bool complete() const;
  size_t size() const;

  /// Page id at position \p index if already produced.
  std::optional<PageId> At(size_t index) const;

  /// Copy of all ids appended so far.
  std::vector<PageId> Ids() const;

  /// True once complete() and the consumer has seen all size() pages.
  bool Exhausted(size_t consumed) const;

 private:
  mutable std::mutex mu_;
  std::vector<PageId> ids_;
  bool complete_ = false;
};

}  // namespace dfdb

#endif  // DFDB_STORAGE_PAGE_TABLE_H_

/// \file metrics.h
/// \brief Named-counter registry shared by both backends.
///
/// The registry is the *snapshot* side of observability: hot paths keep
/// updating their existing cheap counters (std::atomic in the engine,
/// plain uint64 in the single-threaded simulator), and at run completion
/// each stats struct registers its values here under one dotted naming
/// scheme:
///
///   engine.*           EngineCounters / ExecStats
///   engine.faults.*    EngineFaultPlan outcomes
///   storage.*          BufferStats (threads-engine hierarchy)
///   machine.*          LevelBytes + packet counters
///   machine.faults.*   FaultStats
///
/// Keys are stored in a sorted map so Snapshot() and ToJson() are
/// deterministic.

#ifndef DFDB_OBS_METRICS_H_
#define DFDB_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace dfdb {
namespace obs {

class JsonWriter;

/// \brief A map of dotted metric names to uint64 values.
///
/// Not thread-safe: a registry is populated at snapshot time (end of a run)
/// by one thread, never on the hot path.
class MetricsRegistry {
 public:
  /// Sets (or overwrites) a counter/gauge to an absolute value.
  void Set(std::string name, uint64_t value);

  /// Adds to a counter, creating it at zero first if absent.
  void Add(std::string_view name, uint64_t delta);

  /// Returns the value, or nullopt if the name was never registered.
  std::optional<uint64_t> Get(std::string_view name) const;

  /// Value lookup with a default for unregistered names.
  uint64_t GetOr(std::string_view name, uint64_t def) const;

  bool empty() const { return counters_.empty(); }
  size_t size() const { return counters_.size(); }

  /// Sorted (name, value) view — iteration order is deterministic.
  const std::map<std::string, uint64_t>& counters() const { return counters_; }

  /// Writes `{"name":value,...}` in sorted key order.
  void ToJson(JsonWriter* w) const;
  std::string ToJson() const;

  /// Multi-line `name value` dump (REPL `\stats`).
  std::string ToString() const;

 private:
  std::map<std::string, uint64_t> counters_;
};

}  // namespace obs
}  // namespace dfdb

#endif  // DFDB_OBS_METRICS_H_

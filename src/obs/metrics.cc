#include "obs/metrics.h"

#include "common/string_util.h"
#include "obs/json.h"

namespace dfdb {
namespace obs {

void MetricsRegistry::Set(std::string name, uint64_t value) {
  counters_[std::move(name)] = value;
}

void MetricsRegistry::Add(std::string_view name, uint64_t delta) {
  auto it = counters_.find(std::string(name));
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

std::optional<uint64_t> MetricsRegistry::Get(std::string_view name) const {
  auto it = counters_.find(std::string(name));
  if (it == counters_.end()) return std::nullopt;
  return it->second;
}

uint64_t MetricsRegistry::GetOr(std::string_view name, uint64_t def) const {
  auto v = Get(name);
  return v.has_value() ? *v : def;
}

void MetricsRegistry::ToJson(JsonWriter* w) const {
  w->BeginObject();
  for (const auto& [name, value] : counters_) {
    w->Key(name);
    w->Uint(value);
  }
  w->EndObject();
}

std::string MetricsRegistry::ToJson() const {
  JsonWriter w;
  ToJson(&w);
  return w.TakeString();
}

std::string MetricsRegistry::ToString() const {
  std::string out;
  for (const auto& [name, value] : counters_) {
    out += StrFormat("%-36s %llu\n", name.c_str(),
                     static_cast<unsigned long long>(value));
  }
  return out;
}

}  // namespace obs
}  // namespace dfdb

/// \file trace.h
/// \brief Per-run structured event traces, recorded lock-free.
///
/// A Trace is the *flow* side of observability: every interesting moment of
/// a run — an instruction packet dispatched, a task executed, a result page
/// produced, a fault injected or recovered from — becomes one TraceEvent.
/// The threads engine records from worker threads through a TraceRecorder
/// (lock-free on the hot path: one atomic fetch_add for the global sequence
/// number plus an append to a thread-private shard); the simulator records
/// in event order from its single driver thread. Timestamps are steady-clock
/// nanoseconds since run start for the engine and simulated nanoseconds for
/// the machine, so a machine trace is bit-for-bit reproducible across runs.
///
/// Export formats:
///   - ToJson(include_timing): a flat event array. With include_timing set
///     to false the (nondeterministic) wall-clock timestamps are omitted,
///     which is what makes two identically-seeded 1-worker engine runs
///     byte-identical.
///   - ToChromeTrace(): a chrome://tracing / Perfetto-compatible
///     "traceEvents" document (the `dfdb-trace` dump).

#ifndef DFDB_OBS_TRACE_H_
#define DFDB_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "common/macros.h"

namespace dfdb {
namespace obs {

class JsonWriter;

/// \brief What happened. Kept deliberately coarse: one enum across both
/// backends so cross-backend tooling needs no translation table.
enum class TraceEventKind : uint8_t {
  kTaskClaimed = 0,    ///< A processor accepted an instruction packet.
  kTaskExecuted,       ///< The instruction's kernel ran to completion.
  kPageProduced,       ///< A result page left a processor.
  kPacketEnqueued,     ///< A packet entered the network / task queue.
  kPacketDelivered,    ///< A packet arrived at its destination.
  kFaultInjected,      ///< The fault plan fired (kill/fail/drop/corrupt/...).
  kFaultRecovered,     ///< Recovery work (retry/redispatch/rehome/drop).
};

std::string_view TraceEventKindToString(TraceEventKind kind);

/// \brief One observed event. `a` and `b` are kind-dependent small ids
/// (plan-node id and station/worker id in the engine; instruction id and
/// IP/IC id in the machine); -1 means "not applicable".
struct TraceEvent {
  uint64_t seq = 0;      ///< Global record order (total order per run).
  int64_t ts_ns = 0;     ///< Steady-clock (engine) or sim-time (machine) ns.
  TraceEventKind kind = TraceEventKind::kTaskExecuted;
  uint64_t query = 0;    ///< Query index within the batch/program.
  int32_t a = -1;
  int32_t b = -1;
  uint64_t bytes = 0;    ///< Payload bytes involved, if meaningful.
  const char* detail = nullptr;  ///< Static-string annotation or nullptr.
};

/// \brief An immutable, seq-ordered event list produced by
/// TraceRecorder::Finish().
class Trace {
 public:
  const std::vector<TraceEvent>& events() const { return events_; }
  size_t size() const { return events_.size(); }

  size_t CountKind(TraceEventKind kind) const;

  /// Flat `{"events":[...]}` array in seq order. When \p include_timing is
  /// false the ts_ns field is omitted from every event (deterministic
  /// export for wall-clock backends).
  void ToJson(JsonWriter* w, bool include_timing) const;
  std::string ToJson(bool include_timing = true) const;

  /// chrome://tracing "traceEvents" JSON (instant events; ts in
  /// microseconds, pid = query, tid = station id).
  std::string ToChromeTrace() const;

 private:
  friend class TraceRecorder;
  std::vector<TraceEvent> events_;
};

/// \brief Collects TraceEvents from many threads without a hot-path lock.
///
/// Each recording thread appends to its own shard (created once per thread
/// under a mutex, then cached in a thread_local slot); ordering across
/// shards is recovered at Finish() time by sorting on the atomic sequence
/// number. A disabled recorder records nothing and costs one predictable
/// branch per call site.
class TraceRecorder {
 public:
  explicit TraceRecorder(bool enabled);
  ~TraceRecorder();
  DFDB_DISALLOW_COPY(TraceRecorder);

  bool enabled() const { return enabled_; }

  /// Records one event; no-op when disabled. Safe to call concurrently.
  void Record(TraceEventKind kind, uint64_t query, int32_t a, int32_t b,
              uint64_t bytes, const char* detail, int64_t ts_ns);

  /// Merges all shards into a seq-sorted immutable Trace. Must be called
  /// after every recording thread has quiesced (the engine joins its
  /// workers first). Returns nullptr when the recorder is disabled.
  std::shared_ptr<const Trace> Finish();

 private:
  struct Shard {
    std::vector<TraceEvent> events;
  };

  Shard* ShardForThisThread();

  const bool enabled_;
  const uint64_t id_;  ///< Distinguishes recorders in the thread_local cache.
  std::atomic<uint64_t> next_seq_{0};
  std::mutex shards_mu_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace obs
}  // namespace dfdb

#endif  // DFDB_OBS_TRACE_H_

#include "obs/run_report.h"

#include "common/string_util.h"
#include "obs/json.h"

namespace dfdb {
namespace obs {

void RunReport::ToJson(JsonWriter* w, bool include_timing) const {
  const bool timing = include_timing || simulated_time;
  w->BeginObject();
  w->Key("backend");
  w->String(backend);
  w->Key("label");
  w->String(label);
  if (timing) {
    w->Key("seconds");
    w->Double(seconds);
  }
  w->Key("simulated_time");
  w->Bool(simulated_time);
  w->Key("data_bytes");
  w->Uint(data_bytes);
  w->Key("packets");
  w->Uint(packets);
  w->Key("faults");
  w->Uint(faults);
  if (timing) {
    w->Key("bits_per_second");
    w->Double(bits_per_second());
  }
  if (timing && !gauges.empty()) {
    w->Key("gauges");
    w->BeginObject();
    for (const auto& [name, value] : gauges) {
      w->Key(name);
      w->Double(value);
    }
    w->EndObject();
  }
  w->Key("counters");
  counters.ToJson(w);
  if (trace != nullptr) {
    w->Key("trace");
    trace->ToJson(w, timing);
  }
  w->EndObject();
}

std::string RunReport::ToJson(bool include_timing) const {
  JsonWriter w;
  ToJson(&w, include_timing);
  return w.TakeString();
}

std::string RunReport::ToChromeTrace() const {
  if (trace == nullptr) return std::string();
  return trace->ToChromeTrace();
}

std::string RunReport::ToString() const {
  std::string out = StrFormat(
      "%s%s%s: %.6f s%s, %llu packets, %s on the data path (%s)",
      backend.c_str(), label.empty() ? "" : " ", label.c_str(), seconds,
      simulated_time ? " (simulated)" : "",
      static_cast<unsigned long long>(packets),
      HumanBytes(static_cast<int64_t>(data_bytes)).c_str(),
      HumanBitsPerSecond(bits_per_second()).c_str());
  if (faults > 0) {
    out += StrFormat(", %llu faults", static_cast<unsigned long long>(faults));
  }
  if (trace != nullptr) {
    out += StrFormat(", %llu trace events",
                     static_cast<unsigned long long>(trace->size()));
  }
  return out;
}

}  // namespace obs
}  // namespace dfdb

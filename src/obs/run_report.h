/// \file run_report.h
/// \brief Backend-agnostic view of one run's measurements.
///
/// `ExecStats::ToReport()` (threads engine) and `MachineReport::ToReport()`
/// (simulator) both produce a RunReport, so benches, the REPL, and the JSON
/// exporters handle either backend through one type. The counters map uses
/// the dotted naming scheme documented in metrics.h / DESIGN.md.

#ifndef DFDB_OBS_RUN_REPORT_H_
#define DFDB_OBS_RUN_REPORT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace dfdb {
namespace obs {

/// \brief Counters + time + faults + (optional) trace for one run.
struct RunReport {
  /// "engine" or "machine".
  std::string backend;
  /// Caller-assigned label (e.g. "page p=8"); may be empty.
  std::string label;
  /// Wall-clock seconds (engine) or simulated seconds (machine).
  double seconds = 0;
  /// True when `seconds` is simulated time (deterministic).
  bool simulated_time = false;
  /// Primary data-path bytes: engine network bytes / machine outer-ring
  /// bytes — the quantity Figures 3.1 and 4.2 argue about.
  uint64_t data_bytes = 0;
  /// Packets on that data path.
  uint64_t packets = 0;
  /// Faults injected during the run (0 for healthy runs).
  uint64_t faults = 0;
  /// Full named-counter snapshot.
  MetricsRegistry counters;
  /// Wall-clock-derived measurements (latency percentiles, qps) keyed by
  /// dotted name, e.g. "latency.p99_ms". Exported only when timing is
  /// included, like `seconds`, so deterministic exports stay byte-identical.
  std::map<std::string, double> gauges;
  /// Event trace, or nullptr when tracing was disabled.
  std::shared_ptr<const Trace> trace;

  /// Offered data-path load, bits per second.
  double bits_per_second() const {
    return seconds > 0 ? static_cast<double>(data_bytes) * 8.0 / seconds
                       : 0.0;
  }

  /// Full report document. With \p include_timing false, every
  /// wall-clock-derived field (seconds, bps, event timestamps) is omitted
  /// so identically-seeded runs export byte-identical JSON even on the
  /// threads backend. Simulated time is always included (it is
  /// deterministic).
  void ToJson(JsonWriter* w, bool include_timing = true) const;
  std::string ToJson(bool include_timing = true) const;

  /// chrome://tracing document of the attached trace; empty string when
  /// there is no trace.
  std::string ToChromeTrace() const;

  /// Short human summary (REPL `\stats`, bench footers).
  std::string ToString() const;
};

}  // namespace obs
}  // namespace dfdb

#endif  // DFDB_OBS_RUN_REPORT_H_

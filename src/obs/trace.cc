#include "obs/trace.h"

#include <algorithm>

#include "obs/json.h"

namespace dfdb {
namespace obs {

std::string_view TraceEventKindToString(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kTaskClaimed: return "task_claimed";
    case TraceEventKind::kTaskExecuted: return "task_executed";
    case TraceEventKind::kPageProduced: return "page_produced";
    case TraceEventKind::kPacketEnqueued: return "packet_enqueued";
    case TraceEventKind::kPacketDelivered: return "packet_delivered";
    case TraceEventKind::kFaultInjected: return "fault_injected";
    case TraceEventKind::kFaultRecovered: return "fault_recovered";
  }
  return "unknown";
}

size_t Trace::CountKind(TraceEventKind kind) const {
  size_t n = 0;
  for (const TraceEvent& e : events_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

void Trace::ToJson(JsonWriter* w, bool include_timing) const {
  w->BeginObject();
  w->Key("num_events");
  w->Uint(events_.size());
  w->Key("events");
  w->BeginArray();
  for (const TraceEvent& e : events_) {
    w->BeginObject();
    w->Key("seq");
    w->Uint(e.seq);
    if (include_timing) {
      w->Key("ts_ns");
      w->Int(e.ts_ns);
    }
    w->Key("kind");
    w->String(TraceEventKindToString(e.kind));
    w->Key("query");
    w->Uint(e.query);
    if (e.a >= 0) {
      w->Key("a");
      w->Int(e.a);
    }
    if (e.b >= 0) {
      w->Key("b");
      w->Int(e.b);
    }
    if (e.bytes > 0) {
      w->Key("bytes");
      w->Uint(e.bytes);
    }
    if (e.detail != nullptr) {
      w->Key("detail");
      w->String(e.detail);
    }
    w->EndObject();
  }
  w->EndArray();
  w->EndObject();
}

std::string Trace::ToJson(bool include_timing) const {
  JsonWriter w;
  ToJson(&w, include_timing);
  return w.TakeString();
}

std::string Trace::ToChromeTrace() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit");
  w.String("ns");
  w.Key("traceEvents");
  w.BeginArray();
  for (const TraceEvent& e : events_) {
    w.BeginObject();
    w.Key("name");
    w.String(TraceEventKindToString(e.kind));
    w.Key("ph");
    w.String("i");  // Instant event.
    w.Key("s");
    w.String("t");  // Thread-scoped.
    w.Key("ts");
    // chrome://tracing expects microseconds; keep sub-us precision.
    w.Double(static_cast<double>(e.ts_ns) / 1000.0);
    w.Key("pid");
    w.Uint(e.query);
    w.Key("tid");
    w.Int(e.b >= 0 ? e.b : 0);
    w.Key("args");
    w.BeginObject();
    w.Key("seq");
    w.Uint(e.seq);
    if (e.a >= 0) {
      w.Key("node");
      w.Int(e.a);
    }
    if (e.bytes > 0) {
      w.Key("bytes");
      w.Uint(e.bytes);
    }
    if (e.detail != nullptr) {
      w.Key("detail");
      w.String(e.detail);
    }
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

TraceRecorder::TraceRecorder(bool enabled)
    : enabled_(enabled), id_([] {
        static std::atomic<uint64_t> next_id{1};
        return next_id.fetch_add(1, std::memory_order_relaxed);
      }()) {}

TraceRecorder::~TraceRecorder() = default;

namespace {
/// Thread-local shard cache. Keyed by recorder id so a worker thread that
/// outlives one recorder and records into the next does not write into a
/// stale (freed) shard.
struct ShardCache {
  uint64_t recorder_id = 0;
  void* shard = nullptr;
};
thread_local ShardCache tls_shard_cache;
}  // namespace

TraceRecorder::Shard* TraceRecorder::ShardForThisThread() {
  if (tls_shard_cache.recorder_id == id_) {
    return static_cast<Shard*>(tls_shard_cache.shard);
  }
  std::lock_guard<std::mutex> lock(shards_mu_);
  shards_.push_back(std::make_unique<Shard>());
  Shard* shard = shards_.back().get();
  tls_shard_cache = {id_, shard};
  return shard;
}

void TraceRecorder::Record(TraceEventKind kind, uint64_t query, int32_t a,
                           int32_t b, uint64_t bytes, const char* detail,
                           int64_t ts_ns) {
  if (!enabled_) return;
  TraceEvent e;
  e.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  e.ts_ns = ts_ns;
  e.kind = kind;
  e.query = query;
  e.a = a;
  e.b = b;
  e.bytes = bytes;
  e.detail = detail;
  ShardForThisThread()->events.push_back(e);
}

std::shared_ptr<const Trace> TraceRecorder::Finish() {
  if (!enabled_) return nullptr;
  auto trace = std::make_shared<Trace>();
  {
    std::lock_guard<std::mutex> lock(shards_mu_);
    size_t total = 0;
    for (const auto& s : shards_) total += s->events.size();
    trace->events_.reserve(total);
    for (const auto& s : shards_) {
      trace->events_.insert(trace->events_.end(), s->events.begin(),
                            s->events.end());
    }
  }
  std::sort(trace->events_.begin(), trace->events_.end(),
            [](const TraceEvent& x, const TraceEvent& y) {
              return x.seq < y.seq;
            });
  return trace;
}

}  // namespace obs
}  // namespace dfdb

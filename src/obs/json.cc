#include "obs/json.h"

#include <cinttypes>
#include <cstdio>

namespace dfdb {
namespace obs {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::MaybeComma() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!has_value_.empty()) {
    if (has_value_.back()) out_ += ',';
    has_value_.back() = true;
  }
}

void JsonWriter::BeginObject() {
  MaybeComma();
  out_ += '{';
  has_value_.push_back(false);
}

void JsonWriter::EndObject() {
  out_ += '}';
  has_value_.pop_back();
}

void JsonWriter::BeginArray() {
  MaybeComma();
  out_ += '[';
  has_value_.push_back(false);
}

void JsonWriter::EndArray() {
  out_ += ']';
  has_value_.pop_back();
}

void JsonWriter::Key(std::string_view key) {
  MaybeComma();
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\":";
  pending_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  MaybeComma();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
}

void JsonWriter::Uint(uint64_t value) {
  MaybeComma();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  out_ += buf;
}

void JsonWriter::Int(int64_t value) {
  MaybeComma();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  out_ += buf;
}

void JsonWriter::Double(double value) {
  MaybeComma();
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out_ += buf;
}

void JsonWriter::Bool(bool value) {
  MaybeComma();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  MaybeComma();
  out_ += "null";
}

void JsonWriter::Raw(std::string_view json) {
  MaybeComma();
  out_ += json;
}

}  // namespace obs
}  // namespace dfdb

/// \file json.h
/// \brief Minimal deterministic JSON writer for observability exports.
///
/// The observability subsystem promises *byte-identical* exports for
/// identically-seeded runs (see DESIGN.md "Observability"), so this writer
/// avoids every source of formatting nondeterminism: keys are emitted in the
/// order the caller provides them (callers use sorted containers), integers
/// print exactly, and doubles use a fixed "%.17g" round-trip format.

#ifndef DFDB_OBS_JSON_H_
#define DFDB_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dfdb {
namespace obs {

/// Escapes a string for inclusion in a JSON document (no surrounding
/// quotes).
std::string JsonEscape(std::string_view s);

/// \brief Streaming JSON builder.
///
/// Usage:
///   JsonWriter w;
///   w.BeginObject();
///   w.Key("n"); w.Uint(3);
///   w.Key("xs"); w.BeginArray(); w.Uint(1); w.Uint(2); w.EndArray();
///   w.EndObject();
///   std::string doc = w.TakeString();
///
/// The writer inserts commas automatically; it does not validate nesting
/// beyond what is needed for comma placement.
class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Emits `"key":`; must be followed by exactly one value.
  void Key(std::string_view key);

  void String(std::string_view value);
  void Uint(uint64_t value);
  void Int(int64_t value);
  void Double(double value);
  void Bool(bool value);
  void Null();

  /// Splices a pre-rendered JSON value verbatim (e.g. a nested ToJson()).
  void Raw(std::string_view json);

  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

 private:
  void MaybeComma();

  std::string out_;
  /// One entry per open container: true once a value (or key) has been
  /// written at that level, so the next sibling needs a comma.
  std::vector<bool> has_value_;
  bool pending_key_ = false;
};

}  // namespace obs
}  // namespace dfdb

#endif  // DFDB_OBS_JSON_H_
